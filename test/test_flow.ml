(* Tests for routings and the min-congestion solvers, including the
   LP-vs-MWU cross-validation that justifies using MWU at scale. *)

module Rng = Sso_prng.Rng
module Graph = Sso_graph.Graph
module Path = Sso_graph.Path
module Gen = Sso_graph.Gen
module Yen = Sso_graph.Yen
module Demand = Sso_demand.Demand
module Routing = Sso_flow.Routing
module Min_congestion = Sso_flow.Min_congestion
module Rounding = Sso_flow.Rounding
module Concurrent_flow = Sso_flow.Concurrent_flow

let square () =
  (* 0-1-3 and 0-2-3: two disjoint two-hop routes. *)
  let b = Graph.Builder.create 4 in
  ignore (Graph.Builder.add_edge b 0 1);
  ignore (Graph.Builder.add_edge b 1 3);
  ignore (Graph.Builder.add_edge b 0 2);
  ignore (Graph.Builder.add_edge b 2 3);
  Graph.Builder.build b

let square_paths g =
  [ Path.of_vertices g [ 0; 1; 3 ]; Path.of_vertices g [ 0; 2; 3 ] ]

(* Routing basics *)

let test_routing_normalizes () =
  let g = square () in
  let upper, lower =
    match square_paths g with [ a; b ] -> (a, b) | _ -> assert false
  in
  let r = Routing.make [ ((0, 3), [ (2.0, upper); (2.0, lower) ]) ] in
  let dist = Routing.distribution r 0 3 in
  List.iter (fun (w, _) -> Alcotest.(check (float 1e-9)) "normalized" 0.5 w) dist;
  Alcotest.(check int) "two paths" 2 (List.length dist)

let test_routing_merges_duplicates () =
  let g = square () in
  let p = List.hd (square_paths g) in
  let r = Routing.make [ ((0, 3), [ (1.0, p); (3.0, p) ]) ] in
  Alcotest.(check int) "merged" 1 (List.length (Routing.distribution r 0 3))

let test_routing_rejects () =
  let g = square () in
  let p = List.hd (square_paths g) in
  Alcotest.check_raises "wrong endpoints"
    (Invalid_argument "Routing.make: path endpoints do not match pair") (fun () ->
      ignore (Routing.make [ ((1, 3), [ (1.0, p) ]) ]));
  Alcotest.check_raises "zero mass"
    (Invalid_argument "Routing.make: weights must have positive sum") (fun () ->
      ignore (Routing.make [ ((0, 3), [ (0.0, p) ]) ]))

let test_routing_congestion () =
  let g = square () in
  let upper, lower =
    match square_paths g with [ a; b ] -> (a, b) | _ -> assert false
  in
  let d = Demand.single_pair 0 3 2.0 in
  let split = Routing.make [ ((0, 3), [ (1.0, upper); (1.0, lower) ]) ] in
  Alcotest.(check (float 1e-9)) "even split" 1.0 (Routing.congestion g split d);
  let solo = Routing.singleton_paths [ ((0, 3), upper) ] in
  Alcotest.(check (float 1e-9)) "single path" 2.0 (Routing.congestion g solo d);
  Alcotest.(check (float 1e-9)) "empty demand" 0.0 (Routing.congestion g solo Demand.empty)

let test_routing_respects_capacity () =
  let b = Graph.Builder.create 2 in
  ignore (Graph.Builder.add_edge ~cap:4.0 b 0 1);
  let g = Graph.Builder.build b in
  let p = Path.of_vertices g [ 0; 1 ] in
  let r = Routing.singleton_paths [ ((0, 1), p) ] in
  Alcotest.(check (float 1e-9)) "load over capacity" 0.5
    (Routing.congestion g r (Demand.single_pair 0 1 2.0))

let test_routing_dilation () =
  let g = Gen.path_graph 5 in
  let p = Path.of_vertices g [ 0; 1; 2; 3 ] in
  let q = Path.of_vertices g [ 0; 1 ] in
  let r = Routing.make [ ((0, 3), [ (1.0, p) ]); ((0, 1), [ (1.0, q) ]) ] in
  Alcotest.(check int) "dilation over support" 3
    (Routing.dilation r (Demand.of_list [ (0, 3, 1.0); (0, 1, 1.0) ]));
  Alcotest.(check int) "restricted support" 1
    (Routing.dilation r (Demand.single_pair 0 1 1.0))

let test_routing_is_integral_on () =
  let g = square () in
  let upper, lower =
    match square_paths g with [ a; b ] -> (a, b) | _ -> assert false
  in
  let r = Routing.make [ ((0, 3), [ (1.0, upper); (1.0, lower) ]) ] in
  Alcotest.(check bool) "half-half on 2 packets" true
    (Routing.is_integral_on r (Demand.single_pair 0 3 2.0));
  Alcotest.(check bool) "half-half on 1 packet" false
    (Routing.is_integral_on r (Demand.single_pair 0 3 1.0))

let test_merge_convex_bound () =
  (* Lemma 5.15: cong(R, d1+d2) ≤ cong(R1,d1) + cong(R2,d2). *)
  let g = square () in
  let upper, lower =
    match square_paths g with [ a; b ] -> (a, b) | _ -> assert false
  in
  let d1 = Demand.single_pair 0 3 1.0 and d2 = Demand.single_pair 0 3 2.0 in
  let r1 = Routing.singleton_paths [ ((0, 3), upper) ] in
  let r2 = Routing.singleton_paths [ ((0, 3), lower) ] in
  let merged = Routing.merge_convex (d1, r1) (d2, r2) in
  let total = Demand.add d1 d2 in
  Alcotest.(check bool) "demand-sum bound" true
    (Routing.congestion g merged total
    <= Routing.congestion g r1 d1 +. Routing.congestion g r2 d2 +. 1e-9);
  (* The mixture puts 1/3 on upper and 2/3 on lower. *)
  let dist = Routing.distribution merged 0 3 in
  let w_upper =
    List.fold_left (fun acc (w, p) -> if Path.equal p upper then acc +. w else acc) 0.0 dist
  in
  Alcotest.(check (float 1e-9)) "mixture weight" (1.0 /. 3.0) w_upper

let test_sample_path () =
  let g = square () in
  let upper, lower =
    match square_paths g with [ a; b ] -> (a, b) | _ -> assert false
  in
  let r = Routing.make [ ((0, 3), [ (1.0, upper); (0.0, lower) ]) ] in
  let rng = Rng.create 3 in
  for _ = 1 to 20 do
    Alcotest.(check bool) "always the positive-weight path" true
      (Path.equal (Routing.sample_path rng r 0 3) upper)
  done

(* LP on paths *)

let test_lp_on_paths_splits () =
  let g = square () in
  let cands = [ ((0, 3), square_paths g) ] in
  let d = Demand.single_pair 0 3 2.0 in
  let routing, cong = Min_congestion.lp_on_paths g cands d in
  Alcotest.(check (float 1e-6)) "perfect split" 1.0 cong;
  Alcotest.(check (float 1e-6)) "consistent" 1.0 (Routing.congestion g routing d)

let test_lp_on_paths_single_candidate () =
  let g = square () in
  let cands = [ ((0, 3), [ List.hd (square_paths g) ]) ] in
  let d = Demand.single_pair 0 3 3.0 in
  let _, cong = Min_congestion.lp_on_paths g cands d in
  Alcotest.(check (float 1e-6)) "forced congestion" 3.0 cong

let test_lp_on_paths_competing_pairs () =
  (* Path graph 0-1-2: pairs (0,1) and (0,2) both must use edge 0. *)
  let g = Gen.path_graph 3 in
  let p01 = Path.of_vertices g [ 0; 1 ] in
  let p02 = Path.of_vertices g [ 0; 1; 2 ] in
  let cands = [ ((0, 1), [ p01 ]); ((0, 2), [ p02 ]) ] in
  let d = Demand.of_list [ (0, 1, 1.0); (0, 2, 1.0) ] in
  let _, cong = Min_congestion.lp_on_paths g cands d in
  Alcotest.(check (float 1e-6)) "shared edge" 2.0 cong

let test_lp_missing_candidates () =
  let g = square () in
  Alcotest.check_raises "no candidates"
    (Invalid_argument "Min_congestion.lp_on_paths: demanded pair has no candidates")
    (fun () ->
      ignore (Min_congestion.lp_on_paths g [] (Demand.single_pair 0 3 1.0)))

let test_lp_empty_demand () =
  let g = square () in
  let _, cong = Min_congestion.lp_on_paths g [] Demand.empty in
  Alcotest.(check (float 1e-9)) "empty" 0.0 cong

(* MWU vs LP cross-validation *)

let random_candidates rng g k demand =
  List.map
    (fun (s, t) ->
      let paths = Yen.k_shortest g ~weight:(fun _ -> 1.0) ~k s t in
      ignore rng;
      ((s, t), paths))
    (Demand.support demand)

let test_slice_engine_matches_list_engine () =
  (* The list API is a thin wrapper over the slice engine; running both
     on the same candidate sets must produce bit-identical routings and
     congestion, for MWU and for GK. *)
  let rng = Rng.create 23 in
  for trial = 1 to 3 do
    let g = Gen.erdos_renyi rng 14 0.3 in
    let d = Demand.random_pairs rng ~n:14 ~pairs:6 in
    let cands = random_candidates rng g 3 d in
    let sc = Min_congestion.slice_candidates_of_list g cands in
    let r_list, c_list = Min_congestion.mwu_on_paths ~iters:150 g cands d in
    let r_slice, c_slice = Min_congestion.mwu_on_slices ~iters:150 g sc d in
    Alcotest.(check bool)
      (Printf.sprintf "trial %d: mwu congestion bit-identical" trial)
      true
      (Int64.bits_of_float c_list = Int64.bits_of_float c_slice);
    Alcotest.(check bool)
      (Printf.sprintf "trial %d: mwu routings identical" trial)
      true (r_list = r_slice);
    let gr_list, gc_list = Concurrent_flow.on_paths ~epsilon:0.2 g cands d in
    let gr_slice, gc_slice = Concurrent_flow.on_slices ~epsilon:0.2 g sc d in
    Alcotest.(check bool)
      (Printf.sprintf "trial %d: gk congestion bit-identical" trial)
      true
      (Int64.bits_of_float gc_list = Int64.bits_of_float gc_slice);
    Alcotest.(check bool)
      (Printf.sprintf "trial %d: gk routings identical" trial)
      true (gr_list = gr_slice)
  done

let test_mwu_matches_lp () =
  let rng = Rng.create 21 in
  for trial = 1 to 5 do
    let g = Gen.erdos_renyi rng 12 0.35 in
    let d = Demand.random_pairs rng ~n:12 ~pairs:5 in
    let cands = random_candidates rng g 4 d in
    let _, lp = Min_congestion.lp_on_paths g cands d in
    let _, mwu = Min_congestion.mwu_on_paths ~iters:800 g cands d in
    Alcotest.(check bool)
      (Printf.sprintf "trial %d: mwu within 15%% of lp (lp=%.3f mwu=%.3f)" trial lp mwu)
      true
      (mwu >= lp -. 1e-6 && mwu <= (lp *. 1.15) +. 0.05)
  done

let test_mwu_on_square () =
  let g = square () in
  let cands = [ ((0, 3), square_paths g) ] in
  let d = Demand.single_pair 0 3 2.0 in
  let _, cong = Min_congestion.mwu_on_paths ~iters:500 g cands d in
  Alcotest.(check bool) "near 1.0" true (cong < 1.1)

let test_mwu_unrestricted_square () =
  let g = square () in
  let d = Demand.single_pair 0 3 2.0 in
  let _, cong = Min_congestion.mwu_unrestricted ~iters:500 g d in
  Alcotest.(check bool) "uses both routes" true (cong < 1.1);
  Alcotest.(check bool) "not below optimum" true (cong >= 1.0 -. 1e-6)

let test_unrestricted_lp_matches_mwu () =
  let rng = Rng.create 31 in
  let g = Gen.cycle 6 in
  let d = Demand.of_list [ (0, 3, 1.0); (1, 4, 1.0) ] in
  let lp = Min_congestion.lp_unrestricted g d in
  let _, mwu = Min_congestion.mwu_unrestricted ~iters:800 g d in
  ignore rng;
  Alcotest.(check bool)
    (Printf.sprintf "cycle optimum (lp=%.3f mwu=%.3f)" lp mwu)
    true
    (mwu >= lp -. 1e-6 && mwu <= (lp *. 1.15) +. 0.05)

let test_lp_unrestricted_known_value () =
  (* Two disjoint 2-hop routes for 2 units: optimum congestion 1. *)
  let g = square () in
  let d = Demand.single_pair 0 3 2.0 in
  Alcotest.(check (float 1e-5)) "square optimum" 1.0 (Min_congestion.lp_unrestricted g d)

let test_hop_limited_forces_direct () =
  (* multi_path [1;3]: a direct edge and a 3-hop detour.  With max_hops 1
     everything must use the direct edge. *)
  let g = Gen.multi_path [ 1; 3 ] in
  let d = Demand.single_pair 0 1 2.0 in
  (match Min_congestion.mwu_hop_limited ~iters:300 ~max_hops:1 g d with
  | None -> Alcotest.fail "expected feasible"
  | Some (_, cong) -> Alcotest.(check (float 1e-6)) "all on direct edge" 2.0 cong);
  match Min_congestion.mwu_hop_limited ~iters:600 ~max_hops:3 g d with
  | None -> Alcotest.fail "expected feasible"
  | Some (_, cong) -> Alcotest.(check bool) "split when allowed" true (cong < 1.3)

let test_hop_limited_infeasible () =
  let g = Gen.path_graph 5 in
  Alcotest.(check bool) "too few hops" true
    (Min_congestion.mwu_hop_limited ~max_hops:2 g (Demand.single_pair 0 4 1.0) = None)

let test_lower_bound_sound () =
  let rng = Rng.create 41 in
  for _ = 1 to 5 do
    let g = Gen.erdos_renyi rng 10 0.4 in
    let d = Demand.random_pairs rng ~n:10 ~pairs:4 in
    let bound = Min_congestion.lower_bound_sparse_cut g d in
    let opt = Min_congestion.lp_unrestricted g d in
    Alcotest.(check bool)
      (Printf.sprintf "lower bound below optimum (%.3f <= %.3f)" bound opt)
      true (bound <= opt +. 1e-6)
  done

let test_lower_bound_tight_on_bottleneck () =
  let g = Gen.path_graph 3 in
  let d = Demand.single_pair 0 2 4.0 in
  Alcotest.(check (float 1e-9)) "cut bound" 4.0 (Min_congestion.lower_bound_sparse_cut g d)

(* Extra routing coverage *)

let test_routing_restrict () =
  let g = square () in
  let p = List.hd (square_paths g) in
  let q = Path.of_vertices g [ 0; 1 ] in
  let r = Routing.make [ ((0, 3), [ (1.0, p) ]); ((0, 1), [ (1.0, q) ]) ] in
  let restricted = Routing.restrict r [ (0, 3) ] in
  Alcotest.(check int) "kept one pair" 1 (List.length (Routing.pairs restricted));
  Alcotest.(check bool) "dropped pair gone" true (Routing.distribution restricted 0 1 = [])

let test_routing_covers () =
  let g = square () in
  let p = List.hd (square_paths g) in
  let r = Routing.singleton_paths [ ((0, 3), p) ] in
  Alcotest.(check bool) "covers its pair" true (Routing.covers r (Demand.single_pair 0 3 1.0));
  Alcotest.(check bool) "missing pair" false (Routing.covers r (Demand.single_pair 1 2 1.0))

let test_routing_support_sparsity () =
  let g = square () in
  let upper, lower =
    match square_paths g with [ a; b ] -> (a, b) | _ -> assert false
  in
  let r =
    Routing.make
      [ ((0, 3), [ (1.0, upper); (1.0, lower) ]); ((0, 1), [ (1.0, Path.of_vertices g [ 0; 1 ]) ]) ]
  in
  Alcotest.(check int) "max support" 2 (Routing.support_sparsity r)

let test_routing_edge_congestion () =
  let g = square () in
  let upper = List.hd (square_paths g) in
  let r = Routing.singleton_paths [ ((0, 3), upper) ] in
  let d = Demand.single_pair 0 3 3.0 in
  Alcotest.(check (float 1e-9)) "used edge" 3.0
    (Routing.edge_congestion g r d upper.Path.edges.(0));
  (* Edge 2 belongs to the other route. *)
  Alcotest.(check (float 1e-9)) "unused edge" 0.0 (Routing.edge_congestion g r d 2)

let test_lower_bound_volume_on_long_path () =
  (* On a path graph, hop distances make the volume bound bite: 3 pairs of
     span 4 over 4 edges → at least 3.0 even though each pair's cut bound
     is only 1·d. *)
  let g = Gen.path_graph 5 in
  let d = Demand.of_list [ (0, 4, 1.0); (4, 0, 1.0); (0, 4, 0.0) ] in
  Alcotest.(check bool) "volume bound" true
    (Min_congestion.lower_bound_sparse_cut g d >= 2.0 -. 1e-9)

let test_gk_epsilon_tradeoff () =
  let g = square () in
  let cands = [ ((0, 3), square_paths g) ] in
  let d = Demand.single_pair 0 3 2.0 in
  let _, coarse = Concurrent_flow.on_paths ~epsilon:0.5 g cands d in
  let _, fine = Concurrent_flow.on_paths ~epsilon:0.02 g cands d in
  Alcotest.(check bool)
    (Printf.sprintf "both near optimum (%.3f, %.3f)" coarse fine)
    true
    (fine <= 1.05 && coarse <= 1.6);
  Alcotest.(check bool) "fine at least as good" true (fine <= coarse +. 1e-9)

let test_gk_rejects_bad_epsilon () =
  let g = square () in
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Concurrent_flow.on_paths ~epsilon:1.5 g
            [ ((0, 3), square_paths g) ]
            (Demand.single_pair 0 3 1.0));
       false
     with Invalid_argument _ -> true)

(* Warm-started MWU *)

let test_warm_start_preserves_good_solution () =
  (* Seed with the exact optimum at high weight + few fresh rounds: the
     result must stay near-optimal. *)
  let g = square () in
  let cands = [ ((0, 3), square_paths g) ] in
  let d = Demand.single_pair 0 3 2.0 in
  let optimal, lp = Min_congestion.lp_on_paths g cands d in
  let _, warm =
    Min_congestion.mwu_on_paths_warm ~iters:5 ~warm:optimal ~warm_weight:100 g cands d
  in
  Alcotest.(check bool)
    (Printf.sprintf "stays near optimum (lp %.3f warm %.3f)" lp warm)
    true
    (warm <= (lp *. 1.1) +. 0.02)

let test_warm_start_recovers_from_bad_seed () =
  (* Seed with the worst routing at low weight + many fresh rounds: MWU
     must still converge. *)
  let g = square () in
  let upper, lower =
    match square_paths g with [ a; b ] -> (a, b) | _ -> assert false
  in
  ignore lower;
  let bad = Routing.singleton_paths [ ((0, 3), upper) ] in
  let cands = [ ((0, 3), square_paths g) ] in
  let d = Demand.single_pair 0 3 2.0 in
  let _, recovered =
    Min_congestion.mwu_on_paths_warm ~iters:600 ~warm:bad ~warm_weight:1 g cands d
  in
  Alcotest.(check bool) (Printf.sprintf "recovered %.3f" recovered) true (recovered <= 1.15)

let test_warm_start_handles_new_pairs () =
  (* The new demand has a pair the warm routing never saw. *)
  let g = Gen.grid 3 3 in
  let d_old = Demand.single_pair 0 8 1.0 in
  let cands_old = [ ((0, 8), Yen.k_shortest g ~weight:(fun _ -> 1.0) ~k:3 0 8) ] in
  let warm, _ = Min_congestion.lp_on_paths g cands_old d_old in
  let d_new = Demand.of_list [ (0, 8, 1.0); (2, 6, 1.0) ] in
  let cands_new =
    cands_old @ [ ((2, 6), Yen.k_shortest g ~weight:(fun _ -> 1.0) ~k:3 2 6) ]
  in
  let routing, cong =
    Min_congestion.mwu_on_paths_warm ~iters:200 ~warm ~warm_weight:50 g cands_new d_new
  in
  Alcotest.(check bool) "covers the new pair" true (Routing.covers routing d_new);
  Alcotest.(check bool) "finite congestion" true (Float.is_finite cong && cong > 0.0)

let test_warm_start_rejects_bad_weight () =
  let g = square () in
  let cands = [ ((0, 3), square_paths g) ] in
  let d = Demand.single_pair 0 3 1.0 in
  let warm, _ = Min_congestion.lp_on_paths g cands d in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Min_congestion.mwu_on_paths_warm ~iters:10 ~warm ~warm_weight:0 g cands d);
       false
     with Invalid_argument _ -> true)

(* Garg–Könemann concurrent flow *)

let test_gk_splits_square () =
  let g = square () in
  let cands = [ ((0, 3), square_paths g) ] in
  let d = Demand.single_pair 0 3 2.0 in
  let _, cong = Concurrent_flow.on_paths ~epsilon:0.05 g cands d in
  Alcotest.(check bool) (Printf.sprintf "near 1.0 (got %.3f)" cong) true (cong <= 1.1)

let test_gk_matches_lp () =
  let rng = Rng.create 71 in
  for trial = 1 to 4 do
    let g = Gen.erdos_renyi rng 12 0.35 in
    let d = Demand.random_pairs rng ~n:12 ~pairs:5 in
    let cands = random_candidates rng g 4 d in
    let _, lp = Min_congestion.lp_on_paths g cands d in
    let _, gk = Concurrent_flow.on_paths ~epsilon:0.05 g cands d in
    Alcotest.(check bool)
      (Printf.sprintf "trial %d: gk within 15%% of lp (lp=%.3f gk=%.3f)" trial lp gk)
      true
      (gk >= lp -. 1e-6 && gk <= (lp *. 1.15) +. 0.05)
  done

let test_gk_unrestricted_matches_lp () =
  let g = Gen.cycle 6 in
  let d = Demand.of_list [ (0, 3, 1.0); (1, 4, 1.0) ] in
  let lp = Min_congestion.lp_unrestricted g d in
  let _, gk = Concurrent_flow.unrestricted ~epsilon:0.05 g d in
  Alcotest.(check bool)
    (Printf.sprintf "cycle (lp=%.3f gk=%.3f)" lp gk)
    true
    (gk >= lp -. 1e-6 && gk <= (lp *. 1.15) +. 0.05)

let test_gk_three_engines_agree () =
  (* LP (exact), MWU and GK must all land within a narrow band. *)
  let rng = Rng.create 73 in
  let g = Gen.grid 4 4 in
  let d = Demand.random_pairs rng ~n:16 ~pairs:6 in
  let cands = random_candidates rng g 4 d in
  let _, lp = Min_congestion.lp_on_paths g cands d in
  let _, mwu = Min_congestion.mwu_on_paths ~iters:800 g cands d in
  let _, gk = Concurrent_flow.on_paths ~epsilon:0.05 g cands d in
  Alcotest.(check bool)
    (Printf.sprintf "agreement lp=%.3f mwu=%.3f gk=%.3f" lp mwu gk)
    true
    (mwu <= (lp *. 1.15) +. 0.05 && gk <= (lp *. 1.15) +. 0.05)

let test_gk_empty_demand () =
  let g = square () in
  let _, cong = Concurrent_flow.on_paths g [] Demand.empty in
  Alcotest.(check (float 1e-9)) "empty" 0.0 cong

let test_gk_missing_candidates () =
  let g = square () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Concurrent_flow.on_paths g [] (Demand.single_pair 0 3 1.0));
       false
     with Invalid_argument _ -> true)

let test_gk_respects_capacities () =
  (* Unequal capacities: optimal split is proportional to caps. *)
  let b = Graph.Builder.create 2 in
  ignore (Graph.Builder.add_edge ~cap:3.0 b 0 1);
  ignore (Graph.Builder.add_edge ~cap:1.0 b 0 1);
  let g = Graph.Builder.build b in
  let p0 = Path.of_edges g ~src:0 ~dst:1 [| 0 |] in
  let p1 = Path.of_edges g ~src:0 ~dst:1 [| 1 |] in
  let d = Demand.single_pair 0 1 4.0 in
  let _, cong = Concurrent_flow.on_paths ~epsilon:0.05 g [ ((0, 1), [ p0; p1 ]) ] d in
  (* Optimum: 3 on the fat edge, 1 on the thin → congestion 1. *)
  Alcotest.(check bool) (Printf.sprintf "prop split (got %.3f)" cong) true (cong <= 1.1)

(* Rounding *)

let test_round_is_integral () =
  let g = square () in
  let upper, lower =
    match square_paths g with [ a; b ] -> (a, b) | _ -> assert false
  in
  let r = Routing.make [ ((0, 3), [ (1.0, upper); (1.0, lower) ]) ] in
  let d = Demand.single_pair 0 3 5.0 in
  let rng = Rng.create 5 in
  let a = Rounding.round rng r d in
  Alcotest.(check (float 1e-9)) "demand preserved" 5.0 (Demand.siz (Rounding.demand_of a));
  Alcotest.(check bool) "induced routing integral" true
    (Routing.is_integral_on (Rounding.to_routing a) d)

let test_round_rejects_fractional_demand () =
  let g = square () in
  let r = Routing.singleton_paths [ ((0, 3), List.hd (square_paths g)) ] in
  let rng = Rng.create 5 in
  Alcotest.check_raises "fractional"
    (Invalid_argument "Rounding.round: demand must be integral") (fun () ->
      ignore (Rounding.round rng r (Demand.single_pair 0 3 0.5)))

let test_rounding_lemma_bound () =
  (* Lemma 6.3: some rounding achieves ≤ 2·cong_R + 3·ln m; best-of-20
     should find one on small instances. *)
  let rng = Rng.create 17 in
  for _ = 1 to 5 do
    let g = Gen.erdos_renyi rng 12 0.35 in
    let d = Demand.random_pairs rng ~n:12 ~pairs:6 in
    let cands =
      List.map
        (fun (s, t) -> ((s, t), Yen.k_shortest g ~weight:(fun _ -> 1.0) ~k:3 s t))
        (Demand.support d)
    in
    let fractional, frac_cong = Min_congestion.lp_on_paths g cands d in
    let a = Rounding.best_round ~tries:20 rng g fractional d in
    let bound = (2.0 *. frac_cong) +. (3.0 *. Float.log (float_of_int (Graph.m g))) in
    Alcotest.(check bool)
      (Printf.sprintf "rounding bound (%.3f <= %.3f)" (Rounding.congestion g a) bound)
      true
      (Rounding.congestion g a <= bound +. 1e-6)
  done

let test_local_search_improves () =
  (* Start with both packets on the same route; local search should move
     one to the disjoint alternative. *)
  let g = square () in
  let upper, lower =
    match square_paths g with [ a; b ] -> (a, b) | _ -> assert false
  in
  let bad : Rounding.assignment = [| ((0, 3), [| upper; upper |]) |] in
  Alcotest.(check (float 1e-9)) "initially congested" 2.0 (Rounding.congestion g bad);
  let improved =
    Rounding.local_search g
      ~candidates:(fun _ _ -> [ upper; lower ])
      bad
  in
  Alcotest.(check (float 1e-9)) "balanced" 1.0 (Rounding.congestion g improved)

let test_local_search_preserves_demand () =
  let g = square () in
  let upper, lower =
    match square_paths g with [ a; b ] -> (a, b) | _ -> assert false
  in
  let a : Rounding.assignment = [| ((0, 3), [| upper; upper; lower |]) |] in
  let improved = Rounding.local_search g ~candidates:(fun _ _ -> [ upper; lower ]) a in
  Alcotest.(check bool) "same demand" true
    (Demand.equal (Rounding.demand_of a) (Rounding.demand_of improved))

let prop_round_preserves_counts =
  QCheck.Test.make ~name:"rounding preserves per-pair packet counts" ~count:50
    QCheck.(pair small_int (int_range 1 6))
    (fun (seed, packets) ->
      let g = square () in
      let upper, lower =
        match square_paths g with [ a; b ] -> (a, b) | _ -> assert false
      in
      let r = Routing.make [ ((0, 3), [ (1.0, upper); (1.0, lower) ]) ] in
      let d = Demand.single_pair 0 3 (float_of_int packets) in
      let rng = Rng.create seed in
      let a = Rounding.round rng r d in
      Demand.equal (Rounding.demand_of a) d)

(* Source-batched oracles: the batched MWU must return routings that are
   byte-identical to the per-pair oracle, at any pool size.  This is the
   determinism contract the kernel refactor promises (E3/E14 depend on it). *)

module Pool = Sso_engine.Pool

let exact_same_routing label r1 r2 =
  let dump r =
    List.map
      (fun (s, t) ->
        ( (s, t),
          List.map
            (fun (w, (p : Path.t)) -> (w, p.Path.src, p.Path.dst, p.Path.edges))
            (Routing.distribution r s t) ))
      (Routing.pairs r)
  in
  Alcotest.(check bool) label true (dump r1 = dump r2)

let batched_demand () =
  (* Several targets per source so batching actually groups, plus one
     lone pair. *)
  Demand.of_list
    [ (0, 5, 1.0); (0, 7, 2.0); (0, 11, 1.0); (2, 9, 1.5); (2, 13, 1.0); (4, 10, 0.5) ]

let with_pool jobs f =
  let p = Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

let test_mwu_unrestricted_batched_matches_per_pair () =
  let rng = Rng.create 21 in
  let g = Gen.random_regular rng 16 4 in
  let d = batched_demand () in
  let solve ~pool ~batched =
    fst (Min_congestion.mwu_unrestricted ~pool ~iters:60 ~batched g d)
  in
  with_pool 1 @@ fun p1 ->
  with_pool 4 @@ fun p4 ->
  let reference = solve ~pool:p1 ~batched:false in
  exact_same_routing "batched jobs 1" reference (solve ~pool:p1 ~batched:true);
  exact_same_routing "per-pair jobs 4" reference (solve ~pool:p4 ~batched:false);
  exact_same_routing "batched jobs 4" reference (solve ~pool:p4 ~batched:true)

let test_mwu_hop_limited_batched_matches_per_pair () =
  let rng = Rng.create 22 in
  let g = Gen.random_regular rng 16 4 in
  let d = batched_demand () in
  let solve ~pool ~batched =
    match Min_congestion.mwu_hop_limited ~pool ~iters:30 ~batched ~max_hops:6 g d with
    | Some (r, _) -> r
    | None -> Alcotest.fail "hop-limited solve should be feasible"
  in
  with_pool 1 @@ fun p1 ->
  with_pool 4 @@ fun p4 ->
  let reference = solve ~pool:p1 ~batched:false in
  exact_same_routing "batched jobs 1" reference (solve ~pool:p1 ~batched:true);
  exact_same_routing "per-pair jobs 4" reference (solve ~pool:p4 ~batched:false);
  exact_same_routing "batched jobs 4" reference (solve ~pool:p4 ~batched:true)

let () =
  Alcotest.run "flow"
    [
      ( "routing",
        [
          Alcotest.test_case "normalizes" `Quick test_routing_normalizes;
          Alcotest.test_case "merges duplicates" `Quick test_routing_merges_duplicates;
          Alcotest.test_case "rejects bad input" `Quick test_routing_rejects;
          Alcotest.test_case "congestion" `Quick test_routing_congestion;
          Alcotest.test_case "capacity" `Quick test_routing_respects_capacity;
          Alcotest.test_case "dilation" `Quick test_routing_dilation;
          Alcotest.test_case "integral on" `Quick test_routing_is_integral_on;
          Alcotest.test_case "merge convex (Lemma 5.15)" `Quick test_merge_convex_bound;
          Alcotest.test_case "sample path" `Quick test_sample_path;
        ] );
      ( "lp",
        [
          Alcotest.test_case "splits" `Quick test_lp_on_paths_splits;
          Alcotest.test_case "single candidate" `Quick test_lp_on_paths_single_candidate;
          Alcotest.test_case "competing pairs" `Quick test_lp_on_paths_competing_pairs;
          Alcotest.test_case "missing candidates" `Quick test_lp_missing_candidates;
          Alcotest.test_case "empty demand" `Quick test_lp_empty_demand;
          Alcotest.test_case "unrestricted known value" `Quick test_lp_unrestricted_known_value;
        ] );
      ( "mwu",
        [
          Alcotest.test_case "slice engine = list engine" `Quick
            test_slice_engine_matches_list_engine;
          Alcotest.test_case "matches lp" `Slow test_mwu_matches_lp;
          Alcotest.test_case "square" `Quick test_mwu_on_square;
          Alcotest.test_case "unrestricted square" `Quick test_mwu_unrestricted_square;
          Alcotest.test_case "unrestricted vs lp" `Slow test_unrestricted_lp_matches_mwu;
          Alcotest.test_case "hop limited direct" `Quick test_hop_limited_forces_direct;
          Alcotest.test_case "hop limited infeasible" `Quick test_hop_limited_infeasible;
          Alcotest.test_case "unrestricted batched = per-pair" `Quick
            test_mwu_unrestricted_batched_matches_per_pair;
          Alcotest.test_case "hop limited batched = per-pair" `Quick
            test_mwu_hop_limited_batched_matches_per_pair;
          Alcotest.test_case "lower bound sound" `Slow test_lower_bound_sound;
          Alcotest.test_case "lower bound bottleneck" `Quick test_lower_bound_tight_on_bottleneck;
        ] );
      ( "routing extra",
        [
          Alcotest.test_case "restrict" `Quick test_routing_restrict;
          Alcotest.test_case "covers" `Quick test_routing_covers;
          Alcotest.test_case "support sparsity" `Quick test_routing_support_sparsity;
          Alcotest.test_case "edge congestion" `Quick test_routing_edge_congestion;
          Alcotest.test_case "volume lower bound" `Quick test_lower_bound_volume_on_long_path;
          Alcotest.test_case "gk epsilon tradeoff" `Quick test_gk_epsilon_tradeoff;
          Alcotest.test_case "gk rejects bad epsilon" `Quick test_gk_rejects_bad_epsilon;
        ] );
      ( "warm start",
        [
          Alcotest.test_case "preserves good solution" `Quick
            test_warm_start_preserves_good_solution;
          Alcotest.test_case "recovers from bad seed" `Quick
            test_warm_start_recovers_from_bad_seed;
          Alcotest.test_case "handles new pairs" `Quick test_warm_start_handles_new_pairs;
          Alcotest.test_case "rejects bad weight" `Quick test_warm_start_rejects_bad_weight;
        ] );
      ( "garg-konemann",
        [
          Alcotest.test_case "splits square" `Quick test_gk_splits_square;
          Alcotest.test_case "matches lp" `Slow test_gk_matches_lp;
          Alcotest.test_case "unrestricted vs lp" `Slow test_gk_unrestricted_matches_lp;
          Alcotest.test_case "three engines agree" `Slow test_gk_three_engines_agree;
          Alcotest.test_case "empty demand" `Quick test_gk_empty_demand;
          Alcotest.test_case "missing candidates" `Quick test_gk_missing_candidates;
          Alcotest.test_case "respects capacities" `Quick test_gk_respects_capacities;
        ] );
      ( "rounding",
        [
          Alcotest.test_case "integral" `Quick test_round_is_integral;
          Alcotest.test_case "rejects fractional" `Quick test_round_rejects_fractional_demand;
          Alcotest.test_case "Lemma 6.3 bound" `Slow test_rounding_lemma_bound;
          Alcotest.test_case "local search improves" `Quick test_local_search_improves;
          Alcotest.test_case "local search preserves demand" `Quick
            test_local_search_preserves_demand;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_round_preserves_counts ] );
    ]
