(* Tests for demand matrices: normalization, classifiers, generators. *)

module Rng = Sso_prng.Rng
module Demand = Sso_demand.Demand
module Gen = Sso_graph.Gen

let test_of_list_normalizes () =
  let d = Demand.of_list [ (0, 1, 2.0); (0, 1, 3.0); (1, 2, 0.0) ] in
  Alcotest.(check (float 1e-9)) "duplicates sum" 5.0 (Demand.get d 0 1);
  Alcotest.(check (float 1e-9)) "zeros dropped" 0.0 (Demand.get d 1 2);
  Alcotest.(check int) "support size" 1 (Demand.support_size d)

let test_of_list_rejects () =
  Alcotest.check_raises "diagonal" (Invalid_argument "Demand.of_list: diagonal entry")
    (fun () -> ignore (Demand.of_list [ (3, 3, 1.0) ]));
  Alcotest.check_raises "negative" (Invalid_argument "Demand.of_list: negative demand")
    (fun () -> ignore (Demand.of_list [ (0, 1, -1.0) ]))

let test_siz_and_max () =
  let d = Demand.of_list [ (0, 1, 2.0); (1, 0, 3.0); (2, 3, 0.5) ] in
  Alcotest.(check (float 1e-9)) "siz" 5.5 (Demand.siz d);
  Alcotest.(check (float 1e-9)) "max entry" 3.0 (Demand.max_entry d);
  Alcotest.(check (float 1e-9)) "empty siz" 0.0 (Demand.siz Demand.empty);
  Alcotest.(check (float 1e-9)) "empty max" 0.0 (Demand.max_entry Demand.empty)

let test_support_ordered () =
  let d = Demand.of_list [ (2, 0, 1.0); (0, 2, 1.0); (0, 1, 1.0) ] in
  Alcotest.(check (list (pair int int))) "lexicographic"
    [ (0, 1); (0, 2); (2, 0) ] (Demand.support d)

let test_add_scale () =
  let d1 = Demand.of_list [ (0, 1, 1.0) ] in
  let d2 = Demand.of_list [ (0, 1, 2.0); (1, 2, 1.0) ] in
  let sum = Demand.add d1 d2 in
  Alcotest.(check (float 1e-9)) "add overlap" 3.0 (Demand.get sum 0 1);
  Alcotest.(check (float 1e-9)) "add disjoint" 1.0 (Demand.get sum 1 2);
  let scaled = Demand.scale 2.0 sum in
  Alcotest.(check (float 1e-9)) "scale" 6.0 (Demand.get scaled 0 1);
  Alcotest.(check int) "scale by zero empties" 0
    (Demand.support_size (Demand.scale 0.0 sum))

let test_map_filter () =
  let d = Demand.of_list [ (0, 1, 1.0); (1, 2, 2.0) ] in
  let doubled = Demand.map (fun _ _ v -> v *. 2.0) d in
  Alcotest.(check (float 1e-9)) "map" 4.0 (Demand.get doubled 1 2);
  let only_big = Demand.filter (fun _ _ v -> v > 1.5) d in
  Alcotest.(check int) "filter" 1 (Demand.support_size only_big);
  let dropped = Demand.map (fun _ _ _ -> 0.0) d in
  Alcotest.(check int) "map to zero drops" 0 (Demand.support_size dropped)

let test_classifiers () =
  let perm = Demand.of_list [ (0, 1, 1.0); (1, 0, 1.0); (2, 3, 1.0) ] in
  Alcotest.(check bool) "integral" true (Demand.is_integral perm);
  Alcotest.(check bool) "zero-one" true (Demand.is_zero_one perm);
  Alcotest.(check bool) "permutation" true (Demand.is_permutation perm);
  let not_perm = Demand.of_list [ (0, 1, 1.0); (0, 2, 1.0) ] in
  Alcotest.(check bool) "double sender" false (Demand.is_permutation not_perm);
  let not_01 = Demand.of_list [ (0, 1, 2.0) ] in
  Alcotest.(check bool) "not zero-one" false (Demand.is_zero_one not_01);
  Alcotest.(check bool) "but integral" true (Demand.is_integral not_01);
  let frac = Demand.of_list [ (0, 1, 0.5) ] in
  Alcotest.(check bool) "fractional" false (Demand.is_integral frac)

let test_is_special () =
  let g = Gen.cycle 5 in
  (* cut between any two cycle vertices is 2, so α-special entries are α+2. *)
  let special = Demand.of_list [ (0, 2, 5.0); (1, 3, 5.0) ] in
  Alcotest.(check bool) "special for alpha=3" true (Demand.is_special g ~alpha:3 special);
  Alcotest.(check bool) "not special for alpha=2" false (Demand.is_special g ~alpha:2 special)

let test_random_permutation () =
  let rng = Rng.create 7 in
  let d = Demand.random_permutation rng 50 in
  Alcotest.(check bool) "is permutation" true (Demand.is_permutation d);
  Alcotest.(check bool) "most vertices active" true (Demand.support_size d > 40)

let test_random_pairs () =
  let rng = Rng.create 7 in
  let d = Demand.random_pairs rng ~n:20 ~pairs:15 in
  Alcotest.(check int) "count" 15 (Demand.support_size d);
  Alcotest.(check bool) "zero-one" true (Demand.is_zero_one d)

let test_bit_reversal () =
  let d = Demand.bit_reversal 4 in
  Alcotest.(check bool) "permutation" true (Demand.is_permutation d);
  (* 0b0001 -> 0b1000 *)
  Alcotest.(check (float 1e-9)) "1 -> 8" 1.0 (Demand.get d 1 8);
  (* palindromic addresses are fixed points and dropped *)
  Alcotest.(check (float 1e-9)) "fixed point dropped" 0.0 (Demand.get d 9 9);
  Alcotest.(check int) "support" (16 - 4) (Demand.support_size d)

let test_transpose () =
  let d = Demand.transpose 4 in
  Alcotest.(check bool) "permutation" true (Demand.is_permutation d);
  (* low half 01, high half 10: 0b0110 -> 0b1001 *)
  Alcotest.(check (float 1e-9)) "6 -> 9" 1.0 (Demand.get d 6 9);
  Alcotest.check_raises "odd dimension rejected"
    (Invalid_argument "Demand.transpose: dimension must be even and >= 2") (fun () ->
      ignore (Demand.transpose 3))

let test_all_to_all () =
  let d = Demand.all_to_all 5 in
  Alcotest.(check int) "support" 20 (Demand.support_size d);
  Alcotest.(check (float 1e-9)) "siz" 20.0 (Demand.siz d)

let test_gravity () =
  let rng = Rng.create 11 in
  let d = Demand.gravity rng ~n:10 ~total:100.0 in
  Alcotest.(check (float 1e-6)) "total mass" 100.0 (Demand.siz d);
  Alcotest.(check int) "full support" 90 (Demand.support_size d)

let test_single_pair () =
  let d = Demand.single_pair 3 7 2.5 in
  Alcotest.(check (float 1e-9)) "value" 2.5 (Demand.get d 3 7);
  Alcotest.(check int) "support" 1 (Demand.support_size d)

let test_hotspot () =
  let d = Demand.hotspot ~n:8 ~target:3 in
  Alcotest.(check int) "seven senders" 7 (Demand.support_size d);
  Alcotest.(check (float 1e-9)) "no self traffic" 0.0 (Demand.get d 3 3);
  Alcotest.(check bool) "zero-one" true (Demand.is_zero_one d);
  Alcotest.(check bool) "not a permutation (many-to-one)" false (Demand.is_permutation d)

let test_ring_shift () =
  let d = Demand.ring_shift ~n:6 ~shift:2 in
  Alcotest.(check bool) "permutation" true (Demand.is_permutation d);
  Alcotest.(check (float 1e-9)) "wraps" 1.0 (Demand.get d 5 1);
  Alcotest.check_raises "zero shift rejected"
    (Invalid_argument "Demand.ring_shift: shift must be non-zero mod n") (fun () ->
      ignore (Demand.ring_shift ~n:6 ~shift:6))

let test_stride () =
  let d = Demand.stride ~n:8 ~stride:3 in
  Alcotest.(check bool) "permutation" true (Demand.is_permutation d);
  Alcotest.(check (float 1e-9)) "2 -> 6" 1.0 (Demand.get d 2 6);
  Alcotest.check_raises "non-coprime rejected"
    (Invalid_argument "Demand.stride: stride must be coprime with n") (fun () ->
      ignore (Demand.stride ~n:8 ~stride:2))

let test_equal () =
  let d1 = Demand.of_list [ (0, 1, 1.0); (1, 2, 2.0) ] in
  let d2 = Demand.of_list [ (1, 2, 2.0); (0, 1, 1.0) ] in
  Alcotest.(check bool) "order independent" true (Demand.equal d1 d2);
  Alcotest.(check bool) "value sensitive" false
    (Demand.equal d1 (Demand.of_list [ (0, 1, 1.0); (1, 2, 3.0) ]))

(* Serialization *)

let test_demand_roundtrip () =
  let d = Demand.of_list [ (0, 1, 1.5); (3, 2, 4.0) ] in
  let d' = Demand.of_string (Demand.to_string d) in
  Alcotest.(check bool) "roundtrip" true (Demand.equal d d')

let test_demand_of_string_comments () =
  let d = Demand.of_string "# comment\n0 1 2.0\n\n1 2 1\n" in
  Alcotest.(check int) "two pairs" 2 (Demand.support_size d);
  Alcotest.(check (float 1e-9)) "value" 2.0 (Demand.get d 0 1)

let test_demand_of_string_rejects () =
  Alcotest.(check bool) "bad line" true
    (try
       ignore (Demand.of_string "0 1\n");
       false
     with Failure _ -> true);
  Alcotest.(check bool) "diagonal" true
    (try
       ignore (Demand.of_string "3 3 1.0\n");
       false
     with Failure _ -> true)

let prop_demand_roundtrip =
  QCheck.Test.make ~name:"demand serialization round-trips" ~count:100
    QCheck.(list (triple (int_range 0 9) (int_range 0 9) (float_range 0.01 100.0)))
    (fun raw ->
      (* Shift targets to a disjoint id range so pairs are never diagonal
         (shrinkers may wander outside the declared ranges). *)
      let entries = List.map (fun (s, t, v) -> (s, t + 10, v)) raw in
      let d = Demand.of_list entries in
      Demand.equal d (Demand.of_string (Demand.to_string d)))

(* Workloads *)

module Workload = Sso_demand.Workload

let test_workload_diurnal () =
  let rng = Rng.create 3 in
  let day = Workload.diurnal rng ~n:8 ~epochs:12 ~peak_total:100.0 in
  Alcotest.(check int) "epochs" 12 (Workload.total_epochs day);
  List.iter
    (fun d ->
      let total = Demand.siz d in
      Alcotest.(check bool) "within profile band" true
        (total >= 24.0 && total <= 100.1))
    day;
  (* The trough and the peak must actually differ. *)
  let sizes = List.map Demand.siz day in
  let lo = List.fold_left Float.min infinity sizes in
  let hi = List.fold_left Float.max 0.0 sizes in
  Alcotest.(check bool) "diurnal swing" true (hi >= 2.0 *. lo)

let test_workload_random_walk () =
  let rng = Rng.create 5 in
  let epochs = Workload.random_walk rng ~n:10 ~epochs:8 ~pairs:6 ~churn:0.5 in
  Alcotest.(check int) "epochs" 8 (Workload.total_epochs epochs);
  List.iter
    (fun d ->
      Alcotest.(check int) "constant pair count" 6 (Demand.support_size d);
      Alcotest.(check bool) "zero-one" true (Demand.is_zero_one d))
    epochs;
  (* With churn, consecutive epochs differ (with overwhelming probability
     for this seed). *)
  match epochs with
  | a :: b :: _ -> Alcotest.(check bool) "churn changes support" false (Demand.equal a b)
  | _ -> Alcotest.fail "expected epochs"

let test_workload_zero_churn_is_constant () =
  let rng = Rng.create 7 in
  let epochs = Workload.random_walk rng ~n:10 ~epochs:5 ~pairs:4 ~churn:0.0 in
  match epochs with
  | first :: rest ->
      List.iter
        (fun d -> Alcotest.(check bool) "identical" true (Demand.equal first d))
        rest
  | [] -> Alcotest.fail "expected epochs"

let test_workload_hotspot_sweep () =
  let sweep = Workload.hotspot_sweep ~n:5 in
  Alcotest.(check int) "one epoch per vertex" 5 (Workload.total_epochs sweep);
  List.iteri
    (fun target d ->
      Alcotest.(check int) "incast size" 4 (Demand.support_size d);
      List.iter
        (fun (_, t) -> Alcotest.(check int) "all to target" target t)
        (Demand.support d))
    sweep

let test_workload_peak () =
  let small = Demand.single_pair 0 1 1.0 in
  let big = Demand.of_list [ (0, 1, 5.0); (1, 2, 5.0) ] in
  Alcotest.(check bool) "picks the heavy epoch" true
    (Demand.equal big (Workload.peak [ small; big; small ]));
  Alcotest.(check bool) "empty workload" true
    (Demand.equal Demand.empty (Workload.peak []))

(* Update streams (the churn model as explicit events) *)

module Update = Sso_demand.Update

let test_generate_rejects () =
  let reject name msg f =
    Alcotest.check_raises name (Invalid_argument msg) (fun () -> ignore (f ()))
  in
  reject "ticks" "Workload.generate: ticks must be positive, got 0" (fun () ->
      Workload.generate (Rng.create 1) ~n:10 ~ticks:0 ~pairs:3 ~churn:0.1);
  reject "churn" "Workload.generate: churn must lie in [0,1], got 1.5"
    (fun () ->
      Workload.generate (Rng.create 1) ~n:10 ~ticks:5 ~pairs:3 ~churn:1.5);
  reject "rate churn"
    "Workload.generate: rate_churn must lie in [0,1], got -0.25" (fun () ->
      Workload.generate ~rate_churn:(-0.25) (Rng.create 1) ~n:10 ~ticks:5
        ~pairs:3 ~churn:0.1);
  reject "pairs"
    "Workload.generate: pairs must lie in [1, n(n-1)/2] = [1, 10], got 11"
    (fun () ->
      Workload.generate (Rng.create 1) ~n:5 ~ticks:5 ~pairs:11 ~churn:0.1)

let test_generate_zero_churn_is_static () =
  let events =
    Workload.generate (Rng.create 3) ~n:10 ~ticks:6 ~pairs:4 ~churn:0.0
  in
  Alcotest.(check int) "only the bootstrap arrivals" 4 (List.length events);
  List.iter
    (fun e ->
      Alcotest.(check int) "all at tick 0" 0 e.Update.tick;
      match e.Update.kind with
      | Update.Arrive r -> Alcotest.(check (float 1e-9)) "unit rate" 1.0 r
      | _ -> Alcotest.fail "expected an arrival")
    events

let prop_generate_deterministic =
  QCheck.Test.make ~name:"generate is a pure function of the rng" ~count:25
    QCheck.small_int (fun seed ->
      let gen () =
        Workload.generate ~rate_churn:0.5 (Rng.create seed) ~n:10 ~ticks:6
          ~pairs:5 ~churn:0.4
      in
      List.equal Update.equal (gen ()) (gen ()))

let prop_generate_full_churn_resamples_all =
  QCheck.Test.make
    ~name:"churn 1 departs the whole previous active set every tick" ~count:25
    QCheck.small_int (fun seed ->
      let pairs = 4 and ticks = 5 in
      let events =
        Workload.generate (Rng.create seed) ~n:10 ~ticks ~pairs ~churn:1.0
      in
      let groups = Update.by_tick events in
      let rec check d = function
        | [] -> true
        | (tick, batch) :: rest ->
            let departed =
              List.filter_map
                (fun e ->
                  match e.Update.kind with
                  | Update.Depart -> Some (e.Update.src, e.Update.dst)
                  | Update.Arrive _ | Update.Set_rate _ -> None)
                batch
            in
            let ok =
              if tick = 0 then departed = [] && List.length batch = pairs
              else
                List.length batch = 2 * pairs
                && List.sort compare departed = Demand.support d
            in
            ok && check (Update.apply d batch) rest
      in
      List.length groups = ticks && check Demand.empty groups)

let prop_generate_folds_to_random_walk =
  QCheck.Test.make
    ~name:"folding generate's ticks replays random_walk's epochs" ~count:25
    QCheck.small_int (fun seed ->
      let n = 10 and ticks = 6 and pairs = 5 and churn = 0.5 in
      let events =
        Workload.generate (Rng.create seed) ~n ~ticks ~pairs ~churn
      in
      let epochs =
        Workload.random_walk (Rng.create seed) ~n ~epochs:(ticks - 1) ~pairs
          ~churn
      in
      let demand_after k =
        Update.apply Demand.empty
          (List.filter (fun e -> e.Update.tick <= k) events)
      in
      List.for_all
        (fun k -> Demand.equal (demand_after k) (List.nth epochs (k - 1)))
        (List.init (ticks - 1) (fun i -> i + 1)))

let prop_add_siz =
  QCheck.Test.make ~name:"siz is additive" ~count:200
    QCheck.(pair (list (triple (int_range 0 5) (int_range 6 10) (float_range 0.0 5.0)))
              (list (triple (int_range 0 5) (int_range 6 10) (float_range 0.0 5.0))))
    (fun (l1, l2) ->
      let d1 = Demand.of_list l1 and d2 = Demand.of_list l2 in
      Float.abs (Demand.siz (Demand.add d1 d2) -. (Demand.siz d1 +. Demand.siz d2)) < 1e-6)

let prop_scale_linear =
  QCheck.Test.make ~name:"scale is linear in siz" ~count:200
    QCheck.(pair (float_range 0.0 10.0)
              (list (triple (int_range 0 5) (int_range 6 10) (float_range 0.0 5.0))))
    (fun (c, l) ->
      let d = Demand.of_list l in
      Float.abs (Demand.siz (Demand.scale c d) -. (c *. Demand.siz d)) < 1e-6)

let prop_random_permutation_always_valid =
  QCheck.Test.make ~name:"random_permutation yields permutation demands" ~count:100
    QCheck.(pair small_int (int_range 2 64))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      Demand.is_permutation (Demand.random_permutation rng n))

let () =
  Alcotest.run "demand"
    [
      ( "construction",
        [
          Alcotest.test_case "normalizes" `Quick test_of_list_normalizes;
          Alcotest.test_case "rejects bad input" `Quick test_of_list_rejects;
          Alcotest.test_case "siz and max" `Quick test_siz_and_max;
          Alcotest.test_case "support ordered" `Quick test_support_ordered;
          Alcotest.test_case "add and scale" `Quick test_add_scale;
          Alcotest.test_case "map and filter" `Quick test_map_filter;
          Alcotest.test_case "equal" `Quick test_equal;
        ] );
      ( "classifiers",
        [
          Alcotest.test_case "kinds" `Quick test_classifiers;
          Alcotest.test_case "special" `Quick test_is_special;
        ] );
      ( "generators",
        [
          Alcotest.test_case "random permutation" `Quick test_random_permutation;
          Alcotest.test_case "random pairs" `Quick test_random_pairs;
          Alcotest.test_case "bit reversal" `Quick test_bit_reversal;
          Alcotest.test_case "transpose" `Quick test_transpose;
          Alcotest.test_case "all to all" `Quick test_all_to_all;
          Alcotest.test_case "gravity" `Quick test_gravity;
          Alcotest.test_case "single pair" `Quick test_single_pair;
          Alcotest.test_case "hotspot" `Quick test_hotspot;
          Alcotest.test_case "ring shift" `Quick test_ring_shift;
          Alcotest.test_case "stride" `Quick test_stride;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "roundtrip" `Quick test_demand_roundtrip;
          Alcotest.test_case "comments" `Quick test_demand_of_string_comments;
          Alcotest.test_case "rejects" `Quick test_demand_of_string_rejects;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "diurnal" `Quick test_workload_diurnal;
          Alcotest.test_case "random walk" `Quick test_workload_random_walk;
          Alcotest.test_case "zero churn" `Quick test_workload_zero_churn_is_constant;
          Alcotest.test_case "hotspot sweep" `Quick test_workload_hotspot_sweep;
          Alcotest.test_case "peak" `Quick test_workload_peak;
        ] );
      ( "update streams",
        [
          Alcotest.test_case "generate rejects" `Quick test_generate_rejects;
          Alcotest.test_case "zero churn static" `Quick
            test_generate_zero_churn_is_static;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_add_siz;
            prop_scale_linear;
            prop_random_permutation_always_valid;
            prop_demand_roundtrip;
            prop_generate_deterministic;
            prop_generate_full_churn_resamples_all;
            prop_generate_folds_to_random_walk;
          ] );
    ]
