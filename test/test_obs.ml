(* Tests for Sso_obs: JSONL codec round-trips, the load error contract,
   ring-buffer saturation, the Metrics compatibility shim, and — the load-
   bearing property — identical trace event sequences at any job count. *)

module Obs = Sso_obs.Obs
module Trace = Sso_obs.Trace
module Pool = Sso_engine.Pool
module Metrics = Sso_engine.Metrics
module Rng = Sso_prng.Rng
module Graph = Sso_graph.Graph
module Gen = Sso_graph.Gen
module Demand = Sso_demand.Demand
module Min_congestion = Sso_flow.Min_congestion
module Racke = Sso_oblivious.Racke

let temp_trace () = Filename.temp_file "sso_obs_test" ".jsonl"

let value_str = function
  | Trace.Int i -> Printf.sprintf "i:%d" i
  | Trace.Float f -> Printf.sprintf "f:%h" f
  | Trace.Bool b -> Printf.sprintf "b:%b" b
  | Trace.String s -> Printf.sprintf "s:%S" s

let event_str (e : Trace.event) =
  Printf.sprintf "%d.%d %s %s depth=%d [%s]" e.Trace.slot e.Trace.seq
    (match e.Trace.kind with Trace.Span -> "span" | Trace.Event -> "event")
    e.Trace.name e.Trace.depth
    (String.concat ";"
       (List.map (fun (k, v) -> k ^ "=" ^ value_str v) e.Trace.attrs))

let attrs_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (ka, va) (kb, vb) -> ka = kb && Trace.value_equal va vb)
       a b

let event_equal (a : Trace.event) (b : Trace.event) =
  a.Trace.slot = b.Trace.slot && a.Trace.seq = b.Trace.seq
  && a.Trace.ts_ns = b.Trace.ts_ns && a.Trace.kind = b.Trace.kind
  && a.Trace.name = b.Trace.name && a.Trace.dur_ns = b.Trace.dur_ns
  && a.Trace.depth = b.Trace.depth
  && attrs_equal a.Trace.attrs b.Trace.attrs

let trace_equal (a : Trace.t) (b : Trace.t) =
  attrs_equal a.Trace.meta b.Trace.meta
  && a.Trace.dropped = b.Trace.dropped
  && List.length a.Trace.events = List.length b.Trace.events
  && List.for_all2 event_equal a.Trace.events b.Trace.events
  && a.Trace.histograms = b.Trace.histograms

(* ---- codec ---- *)

let sample_trace =
  let ev slot seq kind name dur depth attrs =
    { Trace.slot; seq; ts_ns = 1000 + seq; kind; name; dur_ns = dur; depth; attrs }
  in
  {
    Trace.meta =
      [
        ("seed", Trace.Int 7);
        ("jobs", Trace.Int 4);
        ("git", Trace.String "v1.2-3-gdeadbee-dirty \"quoted\"\n\ttab");
      ];
    dropped = 3;
    events =
      [
        ev 0 0 Trace.Event "mwu.solve" 0 0
          [ ("solver", Trace.String "unrestricted"); ("pairs", Trace.Int 32) ];
        ev 0 1 Trace.Event "mwu.round" 0 1
          [
            ("round", Trace.Int 1);
            ("round_congestion", Trace.Float 3.125);
            ("avg_congestion", Trace.Float 0.1);
            ("weird", Trace.Float nan);
            ("inf", Trace.Float infinity);
            ("ninf", Trace.Float neg_infinity);
            ("neg", Trace.Float (-0.0));
            ("flag", Trace.Bool true);
          ];
        ev 2 0 Trace.Span "stage4.mwu" 123456 2 [];
      ];
    histograms =
      [
        {
          Trace.h_name = "span.stage4.mwu";
          h_count = 3;
          h_sum = 4096;
          h_buckets = [ (0, 1); (10, 2) ];
        };
      ];
  }

let test_roundtrip () =
  let path = temp_trace () in
  Trace.save path sample_trace;
  let loaded = Trace.load path in
  Sys.remove path;
  Alcotest.(check bool) "round-trips" true (trace_equal sample_trace loaded)

let test_empty_roundtrip () =
  let path = temp_trace () in
  let t = { Trace.meta = []; dropped = 0; events = []; histograms = [] } in
  Trace.save path t;
  let loaded = Trace.load path in
  Sys.remove path;
  Alcotest.(check bool) "empty trace round-trips" true (trace_equal t loaded)

let prop_attrs_roundtrip =
  let open QCheck in
  let value_gen =
    Gen.oneof
      [
        Gen.map (fun i -> Trace.Int i) Gen.int;
        Gen.map (fun f -> Trace.Float f) Gen.float;
        Gen.map (fun b -> Trace.Bool b) Gen.bool;
        Gen.map (fun s -> Trace.String s) Gen.string;
      ]
  in
  let attrs_gen =
    Gen.list_size (Gen.int_range 0 8)
      (Gen.pair (Gen.string_size ~gen:Gen.printable (Gen.int_range 1 12)) value_gen)
  in
  let print attrs =
    String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ value_str v) attrs)
  in
  QCheck_alcotest.to_alcotest
    (Test.make ~count:200 ~name:"attr lists survive save/load"
       (make ~print attrs_gen)
       (fun attrs ->
         let t =
           {
             Trace.meta = attrs;
             dropped = 0;
             events =
               [
                 {
                   Trace.slot = 0;
                   seq = 0;
                   ts_ns = 1;
                   kind = Trace.Event;
                   name = "e";
                   dur_ns = 0;
                   depth = 0;
                   attrs;
                 };
               ];
             histograms = [];
           }
         in
         let path = temp_trace () in
         Trace.save path t;
         let loaded = Trace.load path in
         Sys.remove path;
         trace_equal t loaded))

(* ---- load error contract (mirrors sso cache: 10 unreadable, 11 corrupt) ---- *)

let write path text = Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc text)

let expect_unreadable name f =
  match f () with
  | (_ : Trace.t) -> Alcotest.failf "%s: expected Unreadable" name
  | exception Trace.Unreadable _ -> ()

let expect_corrupt name f =
  match f () with
  | (_ : Trace.t) -> Alcotest.failf "%s: expected Corrupt" name
  | exception Trace.Corrupt _ -> ()

let test_load_contract () =
  expect_unreadable "missing file" (fun () ->
      Trace.load "/nonexistent/sso/trace.jsonl");
  let path = temp_trace () in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  write path "this is not json\n";
  expect_corrupt "garbage" (fun () -> Trace.load path);
  write path "{\"schema\":\"other\",\"version\":1,\"meta\":{},\"dropped\":0,\"events\":0}\n";
  expect_corrupt "wrong schema tag" (fun () -> Trace.load path);
  write path "{\"schema\":\"sso-trace\",\"version\":999,\"meta\":{},\"dropped\":0,\"events\":0}\n";
  expect_corrupt "unsupported version" (fun () -> Trace.load path);
  write path
    "{\"schema\":\"sso-trace\",\"version\":1,\"meta\":{},\"dropped\":0,\"events\":2}\n\
     {\"slot\":0,\"seq\":0,\"ts_ns\":1,\"kind\":\"event\",\"name\":\"e\",\"dur_ns\":0,\"depth\":0,\"attrs\":{}}\n";
  expect_corrupt "truncated" (fun () -> Trace.load path);
  write path "";
  expect_corrupt "empty file" (fun () -> Trace.load path)

(* ---- metrics shim ---- *)

let test_metrics_shim () =
  (* Engine.Metrics must be the same registry as Obs, not a copy: call
     sites migrated one at a time must keep seeing each other's counts. *)
  let a = Metrics.counter "obs.shim.test" in
  let b = Obs.counter "obs.shim.test" in
  Alcotest.(check bool) "same physical counter" true (a == b);
  Metrics.incr ~by:5 a;
  Alcotest.(check int) "visible through Obs" 5 (Obs.counter_value b);
  let s1 = Metrics.span "obs.shim.span" in
  let s2 = Obs.span "obs.shim.span" in
  Alcotest.(check bool) "same physical span" true (s1 == s2);
  Metrics.with_span s1 (fun () -> ());
  Alcotest.(check int) "calls recorded" 1 (Obs.span_calls s2);
  Alcotest.(check string) "same table" (Metrics.table ()) (Obs.metrics_table ());
  Alcotest.(check string) "same json" (Metrics.json ()) (Obs.metrics_json ())

(* ---- ring saturation ---- *)

let test_ring_saturation () =
  Obs.clear_trace ();
  Obs.set_ring_capacity 8;
  Fun.protect ~finally:(fun () ->
      Obs.set_ring_capacity (1 lsl 20);
      Obs.set_tracing false;
      Obs.clear_trace ())
  @@ fun () ->
  Obs.set_tracing true;
  for i = 0 to 19 do
    Obs.event "tick" ~attrs:[ ("i", Trace.Int i) ]
  done;
  Obs.set_tracing false;
  let events = Obs.events () in
  Alcotest.(check int) "capacity bounds the ring" 8 (List.length events);
  Alcotest.(check int) "dropped counted" 12 (Obs.dropped_events ());
  let seqs = List.map (fun (e : Trace.event) -> e.Trace.seq) events in
  Alcotest.(check (list int)) "newest events survive"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ] seqs

let test_capacity_validation () =
  let expect_invalid name msg f =
    match f () with
    | () -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument got ->
        Alcotest.(check string) name msg got
  in
  expect_invalid "zero capacity"
    "Obs.set_ring_capacity: capacity must be >= 1, got 0" (fun () ->
      Obs.set_ring_capacity 0);
  expect_invalid "negative capacity"
    "Obs.set_ring_capacity: capacity must be >= 1, got -3" (fun () ->
      Obs.set_ring_capacity (-3));
  expect_invalid "zero quantile window"
    "Obs.quantile: window must be >= 1, got 0" (fun () ->
      ignore (Obs.quantile ~window:0 "obs.test.badwindow"))

(* Saturate several per-domain rings at once: with 4 worker domains and a
   tiny capacity, every domain's ring overwrites.  Which events survive
   depends on task scheduling, but the accounting must not: drops are
   emitted minus survived, and the merged view stays strictly
   (slot, seq)-ordered. *)
let test_multidomain_saturation () =
  let tasks = 16 and per_task = 10 in
  Obs.clear_trace ();
  Obs.set_ring_capacity 8;
  Fun.protect ~finally:(fun () ->
      Obs.set_ring_capacity (1 lsl 20);
      Obs.set_tracing false;
      Obs.clear_trace ())
  @@ fun () ->
  Obs.set_tracing true;
  let pool = Pool.create ~jobs:4 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  ignore
    (Pool.parallel_init ~pool tasks (fun i ->
         for j = 0 to per_task - 1 do
           Obs.event "sat.tick"
             ~attrs:[ ("task", Trace.Int i); ("j", Trace.Int j) ]
         done;
         i));
  Obs.set_tracing false;
  let events = Obs.events () in
  let survived = List.length events in
  Alcotest.(check bool) "some events dropped" true
    (Obs.dropped_events () > 0);
  Alcotest.(check int) "drops account for every emitted event"
    ((tasks * per_task) - survived)
    (Obs.dropped_events ());
  let rec ordered = function
    | a :: (b :: _ as rest) ->
        (a.Trace.slot < b.Trace.slot
        || (a.Trace.slot = b.Trace.slot && a.Trace.seq < b.Trace.seq))
        && ordered rest
    | _ -> true
  in
  Alcotest.(check bool) "survivors strictly (slot, seq)-ordered" true
    (ordered events)

(* ---- gauges and rolling quantiles ---- *)

let test_gauge () =
  let g = Obs.gauge "obs.test.gauge" in
  Alcotest.(check bool) "find-or-create" true (g == Obs.gauge "obs.test.gauge");
  Obs.set_gauge g 2.5;
  Alcotest.(check (float 0.0)) "set/get" 2.5 (Obs.gauge_value g);
  Obs.reset_metrics ();
  Alcotest.(check (float 0.0)) "reset zeroes" 0.0 (Obs.gauge_value g)

let test_quantile () =
  let q = Obs.quantile ~window:4 "obs.test.quantile" in
  Alcotest.(check bool) "empty estimate is nan" true
    (Float.is_nan (Obs.quantile_estimate q 0.5));
  List.iter (Obs.observe_quantile q) [ 1; 2; 3; 100 ];
  (* 1 -> bucket 0 (upper 1), 2,3 -> bucket 1 (upper 3),
     100 -> bucket 6 (upper 127). *)
  Alcotest.(check (float 0.0)) "p50 quotes bucket 1's boundary" 3.0
    (Obs.quantile_estimate q 0.5);
  Alcotest.(check (float 0.0)) "p100 quotes the max bucket" 127.0
    (Obs.quantile_estimate q 1.0);
  (* A fifth sample evicts the oldest (1): window is [2;3;100;1000]. *)
  Obs.observe_quantile q 1000;
  Alcotest.(check (float 0.0)) "eviction shifts the window" 3.0
    (Obs.quantile_estimate q 0.25);
  Alcotest.(check (float 0.0)) "new max visible" 1023.0
    (Obs.quantile_estimate q 1.0);
  Alcotest.(check int) "all-time count survives eviction" 5
    (Obs.quantile_count q);
  (match Obs.quantile_estimate q 0.0 with
  | (_ : float) -> Alcotest.fail "p = 0 accepted"
  | exception Invalid_argument _ -> ());
  Obs.reset_metrics ();
  Alcotest.(check bool) "reset empties the window" true
    (Float.is_nan (Obs.quantile_estimate q 0.5));
  Alcotest.(check int) "reset zeroes the count" 0 (Obs.quantile_count q)

(* ---- Prometheus exposition ---- *)

let test_exposition () =
  Obs.reset_metrics ();
  Obs.incr ~by:3 (Obs.counter "xp.count");
  Obs.set_gauge (Obs.gauge "xp.g") 2.5;
  Obs.observe_quantile (Obs.quantile "xp.q") 5;
  let h = Obs.histogram "xp.h" in
  Obs.observe h 1;
  Obs.observe h 5;
  let text = Obs.expose (Obs.snapshot ()) in
  let has line =
    Alcotest.(check bool) (Printf.sprintf "exposes %S" line) true
      (List.mem line (String.split_on_char '\n' text))
  in
  has "# TYPE sso_xp_count_total counter";
  has "sso_xp_count_total 3";
  has "# TYPE sso_xp_g gauge";
  has "sso_xp_g 2.5";
  has "# TYPE sso_xp_q summary";
  has "sso_xp_q{quantile=\"0.5\"} 7";
  has "sso_xp_q{quantile=\"0.99\"} 7";
  has "sso_xp_q_sum 5";
  has "sso_xp_q_count 1";
  has "# TYPE sso_xp_h histogram";
  has "sso_xp_h_bucket{le=\"1\"} 1";
  (* Bucket 1 (le 3) is empty but must still appear: cumulative series
     are gap-free. *)
  has "sso_xp_h_bucket{le=\"3\"} 1";
  has "sso_xp_h_bucket{le=\"7\"} 2";
  has "sso_xp_h_bucket{le=\"+Inf\"} 2";
  has "sso_xp_h_sum 6";
  has "sso_xp_h_count 2";
  (* Every line of the rendering is HELP, TYPE, or a sample. *)
  List.iter
    (fun line ->
      if line <> "" then
        Alcotest.(check bool)
          (Printf.sprintf "line %S well-formed" line)
          true
          (String.length line > 0
          && (String.starts_with ~prefix:"# HELP sso_" line
             || String.starts_with ~prefix:"# TYPE sso_" line
             || (String.starts_with ~prefix:"sso_" line
                && String.contains line ' '))))
    (String.split_on_char '\n' text);
  Obs.reset_metrics ()

(* ---- span-tree profiling ---- *)

let test_folded_stacks () =
  let sp slot seq name dur depth =
    {
      Trace.slot;
      seq;
      ts_ns = 0;
      kind = Trace.Span;
      name;
      dur_ns = dur;
      depth;
      attrs = [];
    }
  in
  (* Post-order within each slot: children precede their parent at a
     greater depth.  Slot 1 is an independent stream. *)
  let events =
    [
      sp 0 0 "child" 10 1;
      sp 0 1 "child" 20 1;
      sp 0 2 "root" 100 0;
      sp 1 0 "other" 5 0;
    ]
  in
  Alcotest.(check (list (triple string int int)))
    "folded stacks"
    [ ("other", 1, 5); ("root", 1, 70); ("root;child", 2, 30) ]
    (Trace.folded_stacks events);
  Alcotest.(check (list (triple string int int)))
    "self totals (name, calls, self) by self desc"
    [ ("root", 1, 70); ("child", 2, 30); ("other", 1, 5) ]
    (List.map
       (fun (name, calls, _total, self) -> (name, calls, self))
       (Trace.self_totals events))

(* ---- dropped_events recorded in trace meta ---- *)

let test_write_trace_records_dropped () =
  Obs.clear_trace ();
  Obs.set_tracing true;
  Obs.event "meta.test";
  Obs.set_tracing false;
  let path = temp_trace () in
  Obs.write_trace ~path ~meta:[ ("seed", Trace.Int 1) ];
  let loaded = Trace.load path in
  Sys.remove path;
  Obs.clear_trace ();
  match List.assoc_opt "dropped_events" loaded.Trace.meta with
  | Some (Trace.Int 0) -> ()
  | Some v -> Alcotest.failf "unexpected dropped_events: %s" (value_str v)
  | None -> Alcotest.fail "dropped_events missing from meta"

(* ---- histograms through the trace file ---- *)

let test_histogram_trailer () =
  Obs.reset_metrics ();
  Obs.clear_trace ();
  let h = Obs.histogram "obs.test.payload" in
  List.iter (Obs.observe h) [ 0; 1; 2; 3; 1024; 1500 ];
  let path = temp_trace () in
  Obs.write_trace ~path ~meta:[];
  let loaded = Trace.load path in
  Sys.remove path;
  match
    List.find_opt
      (fun r -> r.Trace.h_name = "obs.test.payload")
      loaded.Trace.histograms
  with
  | None -> Alcotest.fail "histogram trailer missing"
  | Some r ->
      Alcotest.(check int) "count" 6 r.Trace.h_count;
      Alcotest.(check int) "sum" 2530 r.Trace.h_sum;
      (* 0,1 -> bucket 0; 2,3 -> bucket 1; 1024,1500 -> bucket 10 *)
      Alcotest.(check (list (pair int int)))
        "log2 buckets" [ (0, 2); (1, 2); (10, 2) ] r.Trace.h_buckets

(* ---- determinism across job counts ---- *)

let normalize (e : Trace.event) = { e with Trace.ts_ns = 0; dur_ns = 0 }

let workload pool =
  let g = Gen.grid 4 4 in
  ignore (Racke.routing ~pool (Rng.create 11) ~trees:6 ~batch:3 g);
  let d = Demand.random_pairs (Rng.create 12) ~n:(Graph.n g) ~pairs:5 in
  ignore (Min_congestion.mwu_unrestricted ~pool ~iters:8 g d);
  ignore
    (Pool.parallel_init ~pool 5 (fun i ->
         Obs.traced "task.body" (fun () ->
             Obs.event "task.tick" ~attrs:[ ("i", Trace.Int i) ];
             i)))

let capture jobs =
  let pool = Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  Obs.clear_trace ();
  Obs.set_tracing true;
  Fun.protect ~finally:(fun () -> Obs.set_tracing false) (fun () ->
      workload pool);
  List.map (fun e -> event_str (normalize e)) (Obs.events ())

let test_jobs_determinism () =
  let serial = capture 1 in
  let parallel = capture 4 in
  Alcotest.(check bool) "trace is non-trivial" true (List.length serial > 20);
  Alcotest.(check (list string)) "jobs:1 equals jobs:4" serial parallel;
  Obs.clear_trace ()

let capture_events jobs =
  let pool = Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  Obs.clear_trace ();
  Obs.set_tracing true;
  Fun.protect ~finally:(fun () -> Obs.set_tracing false) (fun () ->
      workload pool);
  let events = List.map normalize (Obs.events ()) in
  Obs.clear_trace ();
  events

let test_flame_jobs_invariant () =
  (* Same workload, different job counts: stack paths and call counts
     must match exactly (self ns are zeroed by [normalize] here; in real
     traces they are wall clock, which is why the CLI's byte-identity
     check uses --weight calls). *)
  let folded jobs = Trace.folded_stacks (capture_events jobs) in
  Alcotest.(check (list (triple string int int)))
    "folded stacks jobs:1 = jobs:4" (folded 1) (folded 4)

(* ---- MWU convergence semantics ---- *)

let test_mwu_convergence () =
  let g = Gen.grid 4 4 in
  let d = Demand.random_pairs (Rng.create 5) ~n:(Graph.n g) ~pairs:6 in
  Obs.clear_trace ();
  Obs.set_tracing true;
  let _, congestion =
    Fun.protect ~finally:(fun () -> Obs.set_tracing false) (fun () ->
        Min_congestion.mwu_unrestricted ~iters:8 g d)
  in
  let events = Obs.events () in
  Obs.clear_trace ();
  match Trace.mwu_solves events with
  | [ s ] ->
      Alcotest.(check string) "solver label" "unrestricted" s.Trace.s_solver;
      Alcotest.(check int) "pairs" 6 s.Trace.s_pairs;
      Alcotest.(check int) "iters" 8 s.Trace.s_iters;
      let rounds = s.Trace.s_rounds in
      Alcotest.(check (list int)) "rounds in order" [ 1; 2; 3; 4; 5; 6; 7; 8 ]
        (List.map (fun r -> r.Trace.r_round) rounds);
      List.iter
        (fun (r : Trace.round) ->
          Alcotest.(check bool) "positive congestion" true (r.Trace.r_cong > 0.0);
          Alcotest.(check bool) "support grows" true (r.Trace.r_paths >= 6))
        rounds;
      let final = List.nth rounds (List.length rounds - 1) in
      Alcotest.(check (float 1e-6))
        "final averaged congestion matches the returned routing" congestion
        final.Trace.r_avg
  | solves -> Alcotest.failf "expected one solve, got %d" (List.length solves)

let () =
  Alcotest.run "sso_obs"
    [
      ( "codec",
        [
          Alcotest.test_case "round-trip" `Quick test_roundtrip;
          Alcotest.test_case "empty round-trip" `Quick test_empty_roundtrip;
          prop_attrs_roundtrip;
        ] );
      ( "contract",
        [ Alcotest.test_case "load errors" `Quick test_load_contract ] );
      ( "registry",
        [
          Alcotest.test_case "metrics shim" `Quick test_metrics_shim;
          Alcotest.test_case "ring saturation" `Quick test_ring_saturation;
          Alcotest.test_case "capacity validation" `Quick
            test_capacity_validation;
          Alcotest.test_case "multi-domain saturation" `Quick
            test_multidomain_saturation;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "quantile" `Quick test_quantile;
          Alcotest.test_case "exposition" `Quick test_exposition;
          Alcotest.test_case "histogram trailer" `Quick test_histogram_trailer;
          Alcotest.test_case "dropped in meta" `Quick
            test_write_trace_records_dropped;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs 1 vs 4" `Quick test_jobs_determinism;
          Alcotest.test_case "folded stacks" `Quick test_folded_stacks;
          Alcotest.test_case "flame jobs invariant" `Quick
            test_flame_jobs_invariant;
          Alcotest.test_case "mwu convergence" `Quick test_mwu_convergence;
        ] );
    ]
