(* Tests for the store-and-forward packet simulator: single packets,
   serialization at bottlenecks, capacity widths, and the [LMR94]-style
   congestion+dilation bounds the completion-time objective relies on. *)

module Rng = Sso_prng.Rng
module Graph = Sso_graph.Graph
module Path = Sso_graph.Path
module Gen = Sso_graph.Gen
module Demand = Sso_demand.Demand
module Rounding = Sso_flow.Rounding
module Routing = Sso_flow.Routing
module Simulator = Sso_sim.Simulator
module Valiant = Sso_oblivious.Valiant
module Sampler = Sso_core.Sampler
module Integral = Sso_core.Integral

let assignment_of_paths entries : Rounding.assignment =
  Array.of_list (List.map (fun (pair, paths) -> (pair, Array.of_list paths)) entries)

(* Every test below expects its run to fit the default step budget, so
   unwrap the outcome at the call site; the budget itself is exercised in
   [test_max_steps_guard]. *)
let run ?discipline g a = Simulator.completed_exn (Simulator.run ?discipline g a)

let run_timed ?discipline g packets =
  Simulator.completed_exn (Simulator.run_timed ?discipline g packets)

let test_single_packet () =
  let g = Gen.path_graph 5 in
  let p = Path.of_vertices g [ 0; 1; 2; 3; 4 ] in
  let a = assignment_of_paths [ ((0, 4), [ p ]) ] in
  let stats = run g a in
  Alcotest.(check int) "travel time = hops" 4 stats.Simulator.makespan;
  Alcotest.(check int) "delivered" 1 stats.Simulator.delivered;
  Alcotest.(check int) "no waits" 0 stats.Simulator.total_waits

let test_trivial_packet () =
  let g = Gen.path_graph 3 in
  let a = assignment_of_paths [ ((1, 1), [ Path.trivial 1 ]) ] in
  let stats = run g a in
  Alcotest.(check int) "instant" 0 stats.Simulator.makespan;
  Alcotest.(check int) "counted" 1 stats.Simulator.delivered

let test_serialization_on_shared_edge () =
  (* k packets over the same single edge: makespan = k. *)
  let g = Gen.path_graph 2 in
  let p = Path.of_vertices g [ 0; 1 ] in
  let k = 5 in
  let a = assignment_of_paths [ ((0, 1), List.init k (fun _ -> p)) ] in
  let stats = run g a in
  Alcotest.(check int) "serialized" k stats.Simulator.makespan;
  Alcotest.(check int) "waits total k(k-1)/2" (k * (k - 1) / 2) stats.Simulator.total_waits;
  Alcotest.(check int) "queue saw all" k stats.Simulator.max_queue

let test_capacity_width () =
  (* Same 5 packets over a capacity-2 edge: ⌈5/2⌉ = 3 steps. *)
  let b = Graph.Builder.create 2 in
  ignore (Graph.Builder.add_edge ~cap:2.0 b 0 1);
  let g = Graph.Builder.build b in
  let p = Path.of_vertices g [ 0; 1 ] in
  let a = assignment_of_paths [ ((0, 1), List.init 5 (fun _ -> p)) ] in
  let stats = run g a in
  Alcotest.(check int) "width 2" 3 stats.Simulator.makespan

let test_disjoint_parallelism () =
  (* Two packets on disjoint 3-hop routes finish together. *)
  let g = Gen.multi_path [ 3; 3 ] in
  let a = Path.of_vertices g [ 0; 2; 3; 1 ] in
  let b = Path.of_vertices g [ 0; 4; 5; 1 ] in
  let asg = assignment_of_paths [ ((0, 1), [ a; b ]) ] in
  let stats = run g asg in
  Alcotest.(check int) "parallel" 3 stats.Simulator.makespan

let test_opposite_directions_dont_block () =
  (* One packet 0→2 and one 2→0 on a path share edges but in opposite
     directions: per-direction capacity means no waiting. *)
  let g = Gen.path_graph 3 in
  let fwd = Path.of_vertices g [ 0; 1; 2 ] in
  let bwd = Path.of_vertices g [ 2; 1; 0 ] in
  let asg = assignment_of_paths [ ((0, 2), [ fwd ]); ((2, 0), [ bwd ]) ] in
  let stats = run g asg in
  Alcotest.(check int) "no head-on blocking" 2 stats.Simulator.makespan;
  Alcotest.(check int) "no waits" 0 stats.Simulator.total_waits

let test_pipeline_throughput () =
  (* k packets pipelined along one path of length d: makespan = d + k - 1. *)
  let d = 4 and k = 3 in
  let g = Gen.path_graph (d + 1) in
  let p = Path.of_vertices g (List.init (d + 1) Fun.id) in
  let a = assignment_of_paths [ ((0, d), List.init k (fun _ -> p)) ] in
  let stats = run g a in
  Alcotest.(check int) "pipelined" (d + k - 1) stats.Simulator.makespan

let test_bounds_consistency () =
  let g = Gen.path_graph 2 in
  let p = Path.of_vertices g [ 0; 1 ] in
  let a = assignment_of_paths [ ((0, 1), List.init 4 (fun _ -> p)) ] in
  Alcotest.(check int) "lower bound = congestion" 4 (Simulator.lower_bound g a);
  Alcotest.(check int) "upper bound = cd + d" 5 (Simulator.upper_bound_cd g a)

let run_random_instance seed discipline =
  let rng = Rng.create seed in
  let dim = 5 in
  let g = Gen.hypercube dim in
  let valiant = Valiant.routing g in
  let system = Sampler.alpha_sample (Rng.split rng) valiant ~alpha:dim in
  let d = Demand.random_permutation (Rng.split rng) (Graph.n g) in
  let assignment, _ = Integral.congestion_upper (Rng.split rng) g system d in
  let stats = run ~discipline g assignment in
  (g, assignment, stats)

let test_random_instances_within_bounds () =
  List.iter
    (fun seed ->
      let g, a, stats = run_random_instance seed Simulator.Fifo in
      let lb = Simulator.lower_bound g a in
      let ub = Simulator.upper_bound_cd g a in
      Alcotest.(check bool)
        (Printf.sprintf "lb %d <= makespan %d <= ub %d" lb stats.Simulator.makespan ub)
        true
        (lb <= stats.Simulator.makespan && stats.Simulator.makespan <= ub))
    [ 1; 2; 3 ]

let test_disciplines_all_deliver () =
  List.iter
    (fun discipline ->
      let _, a, stats = run_random_instance 7 discipline in
      let expected =
        Array.fold_left (fun acc (_, paths) -> acc + Array.length paths) 0 a
      in
      Alcotest.(check int) "all delivered" expected stats.Simulator.delivered)
    [ Simulator.Fifo; Simulator.Random_rank (Rng.create 9); Simulator.Longest_remaining ]

let test_makespan_near_cong_plus_dil () =
  (* The empirical heart of Section 7: delivery time tracks c + d, far
     below the trivial c·d schedule. *)
  List.iter
    (fun seed ->
      let g, a, stats = run_random_instance seed (Simulator.Random_rank (Rng.create seed)) in
      ignore g;
      let lb = Simulator.lower_bound g a in
      Alcotest.(check bool)
        (Printf.sprintf "makespan %d within 4x of max(c,d) %d" stats.Simulator.makespan lb)
        true
        (stats.Simulator.makespan <= 4 * lb))
    [ 11; 12; 13 ]

let test_longest_remaining_priority () =
  (* Two packets contend at edge 0→1; one still has 3 hops to go, the
     other 1.  Longest-remaining sends the long one first, so the short
     one arrives at time 2 and the long at time 4. *)
  let g = Gen.path_graph 5 in
  let long_path = Path.of_vertices g [ 0; 1; 2; 3; 4 ] in
  let short_path = Path.of_vertices g [ 0; 1 ] in
  let a = assignment_of_paths [ ((0, 4), [ long_path ]); ((0, 1), [ short_path ]) ] in
  let stats = run ~discipline:Simulator.Longest_remaining g a in
  (* Long first: long finishes at 4, short waits one step then crosses at
     step 2 → makespan 4. *)
  Alcotest.(check int) "makespan" 4 stats.Simulator.makespan;
  Alcotest.(check int) "exactly one wait" 1 stats.Simulator.total_waits

let test_max_steps_guard () =
  (* A too-small budget no longer raises: it returns the partial result as
     [Out_of_budget], with the stats accumulated so far. *)
  let g = Gen.path_graph 2 in
  let p = Path.of_vertices g [ 0; 1 ] in
  let a = assignment_of_paths [ ((0, 1), List.init 5 (fun _ -> p)) ] in
  match Simulator.run ~max_steps:2 g a with
  | Simulator.Completed _ -> Alcotest.fail "expected Out_of_budget"
  | Simulator.Out_of_budget stats as outcome ->
      Alcotest.(check int) "two steps ran" 2 stats.Simulator.makespan;
      Alcotest.(check int) "partial delivery" 2 stats.Simulator.delivered;
      Alcotest.(check int) "value unwraps" 2 (Simulator.value outcome).Simulator.delivered;
      Alcotest.(check bool) "completed_exn refuses" true
        (try
           ignore (Simulator.completed_exn outcome);
           false
         with Failure _ -> true)

let test_wide_edge_both_directions () =
  (* A capacity-2 edge carries 2 packets per direction per step,
     simultaneously in both directions. *)
  let b = Graph.Builder.create 2 in
  ignore (Graph.Builder.add_edge ~cap:2.0 b 0 1);
  let g = Graph.Builder.build b in
  let fwd = Path.of_vertices g [ 0; 1 ] in
  let bwd = Path.of_vertices g [ 1; 0 ] in
  let a = assignment_of_paths [ ((0, 1), [ fwd; fwd ]); ((1, 0), [ bwd; bwd ]) ] in
  let stats = run g a in
  Alcotest.(check int) "one step suffices" 1 stats.Simulator.makespan

let test_fifo_order_respected () =
  (* FIFO ties broken by packet id: the first-listed packet crosses
     first. *)
  let g = Gen.path_graph 3 in
  let p = Path.of_vertices g [ 0; 1; 2 ] in
  let a = assignment_of_paths [ ((0, 2), [ p; p ]) ] in
  let stats = run ~discipline:Simulator.Fifo g a in
  (* Pipelined: second packet follows one step behind. *)
  Alcotest.(check int) "makespan" 3 stats.Simulator.makespan

(* Timed injection *)

let timed pair route release = { Simulator.pair; route; release }

let test_timed_single_packet () =
  let g = Gen.path_graph 4 in
  let p = Path.of_vertices g [ 0; 1; 2; 3 ] in
  let stats = run_timed g [ timed (0, 3) p 5 ] in
  Alcotest.(check (float 1e-9)) "latency = hops" 3.0 stats.Simulator.mean_latency;
  Alcotest.(check int) "finishes at release + hops" 8 stats.Simulator.finish_time;
  Alcotest.(check (float 1e-9)) "no queueing" 0.0 stats.Simulator.mean_queueing

let test_timed_staggered_no_contention () =
  let g = Gen.path_graph 2 in
  let p = Path.of_vertices g [ 0; 1 ] in
  let stats = run_timed g [ timed (0, 1) p 0; timed (0, 1) p 5 ] in
  Alcotest.(check (float 1e-9)) "each latency 1" 1.0 stats.Simulator.mean_latency;
  Alcotest.(check int) "done at 6" 6 stats.Simulator.finish_time

let test_timed_burst_queues () =
  (* 10 packets released together onto a unit edge: latencies 1..10. *)
  let g = Gen.path_graph 2 in
  let p = Path.of_vertices g [ 0; 1 ] in
  let stats = run_timed g (List.init 10 (fun _ -> timed (0, 1) p 0)) in
  Alcotest.(check (float 1e-9)) "mean latency" 5.5 stats.Simulator.mean_latency;
  Alcotest.(check (float 1e-9)) "mean queueing" 4.5 stats.Simulator.mean_queueing;
  Alcotest.(check (float 1e-9)) "p99" 10.0 stats.Simulator.p99_latency;
  Alcotest.(check int) "peak queue" 10 stats.Simulator.peak_queue

let test_timed_paced_no_queueing () =
  (* Release one packet per step onto the edge: nobody ever waits. *)
  let g = Gen.path_graph 2 in
  let p = Path.of_vertices g [ 0; 1 ] in
  let stats = run_timed g (List.init 10 (fun i -> timed (0, 1) p i)) in
  Alcotest.(check (float 1e-9)) "no queueing" 0.0 stats.Simulator.mean_queueing

let test_timed_trivial_packet () =
  let g = Gen.path_graph 2 in
  let stats = run_timed g [ timed (1, 1) (Path.trivial 1) 3 ] in
  Alcotest.(check int) "counted" 1 stats.Simulator.packets;
  Alcotest.(check (float 1e-9)) "zero latency" 0.0 stats.Simulator.mean_latency

let test_timed_rejects_negative_release () =
  let g = Gen.path_graph 2 in
  let p = Path.of_vertices g [ 0; 1 ] in
  Alcotest.check_raises "negative release"
    (Invalid_argument "Simulator.run_timed: negative release time") (fun () ->
      ignore (run_timed g [ timed (0, 1) p (-1) ]))

let prop_makespan_at_least_dilation =
  QCheck.Test.make ~name:"makespan ≥ dilation" ~count:30 QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      let g = Gen.grid 3 3 in
      let base = Sso_oblivious.Ksp.routing ~k:3 g in
      let system = Sampler.alpha_sample (Rng.split rng) base ~alpha:3 in
      let d = Demand.random_pairs (Rng.split rng) ~n:9 ~pairs:4 in
      let assignment, _ = Integral.congestion_upper (Rng.split rng) g system d in
      let stats = run g assignment in
      let dil =
        Array.fold_left
          (fun acc (_, paths) ->
            Array.fold_left (fun acc p -> max acc (Path.hops p)) acc paths)
          0 assignment
      in
      stats.Simulator.makespan >= dil)

let () =
  Alcotest.run "sim"
    [
      ( "basics",
        [
          Alcotest.test_case "single packet" `Quick test_single_packet;
          Alcotest.test_case "trivial packet" `Quick test_trivial_packet;
          Alcotest.test_case "serialization" `Quick test_serialization_on_shared_edge;
          Alcotest.test_case "capacity width" `Quick test_capacity_width;
          Alcotest.test_case "disjoint parallelism" `Quick test_disjoint_parallelism;
          Alcotest.test_case "opposite directions" `Quick test_opposite_directions_dont_block;
          Alcotest.test_case "pipelining" `Quick test_pipeline_throughput;
          Alcotest.test_case "bounds" `Quick test_bounds_consistency;
        ] );
      ( "schedules",
        [
          Alcotest.test_case "within bounds" `Slow test_random_instances_within_bounds;
          Alcotest.test_case "all disciplines deliver" `Slow test_disciplines_all_deliver;
          Alcotest.test_case "makespan ~ c+d" `Slow test_makespan_near_cong_plus_dil;
        ] );
      ( "disciplines",
        [
          Alcotest.test_case "longest remaining" `Quick test_longest_remaining_priority;
          Alcotest.test_case "max steps guard" `Quick test_max_steps_guard;
          Alcotest.test_case "wide edge both directions" `Quick test_wide_edge_both_directions;
          Alcotest.test_case "fifo order" `Quick test_fifo_order_respected;
        ] );
      ( "timed",
        [
          Alcotest.test_case "single packet" `Quick test_timed_single_packet;
          Alcotest.test_case "staggered" `Quick test_timed_staggered_no_contention;
          Alcotest.test_case "burst queues" `Quick test_timed_burst_queues;
          Alcotest.test_case "paced" `Quick test_timed_paced_no_queueing;
          Alcotest.test_case "trivial" `Quick test_timed_trivial_packet;
          Alcotest.test_case "rejects negative release" `Quick
            test_timed_rejects_negative_release;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_makespan_at_least_dilation ] );
    ]
