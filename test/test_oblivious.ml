(* Tests for the oblivious routings: Valiant, deterministic baselines,
   KSP spread, FRT embeddings, the Räcke-style construction, and the
   hop-constrained substitute. *)

module Rng = Sso_prng.Rng
module Graph = Sso_graph.Graph
module Path = Sso_graph.Path
module Gen = Sso_graph.Gen
module Shortest = Sso_graph.Shortest
module Demand = Sso_demand.Demand
module Routing = Sso_flow.Routing
module Min_congestion = Sso_flow.Min_congestion
module Oblivious = Sso_oblivious.Oblivious
module Valiant = Sso_oblivious.Valiant
module Deterministic = Sso_oblivious.Deterministic
module Ksp = Sso_oblivious.Ksp
module Frt = Sso_oblivious.Frt
module Racke = Sso_oblivious.Racke
module Hop_constrained = Sso_oblivious.Hop_constrained
module Pool = Sso_engine.Pool
module Obs = Sso_obs.Obs

let check_distribution_valid g obl pairs =
  List.iter
    (fun (s, t) ->
      let dist = Oblivious.distribution obl s t in
      Alcotest.(check bool) "non-empty" true (dist <> []);
      let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 dist in
      Alcotest.(check (float 1e-6)) "normalized" 1.0 total;
      List.iter
        (fun ((_, p) : float * Path.t) ->
          Alcotest.(check int) "src" s p.Path.src;
          Alcotest.(check int) "dst" t p.Path.dst;
          Alcotest.(check bool) "simple" true (Path.is_simple g p))
        dist)
    pairs

(* Oblivious wrapper *)

let test_wrapper_memoizes () =
  let g = Gen.cycle 5 in
  let calls = ref 0 in
  let obl =
    Oblivious.make ~name:"test" g (fun s t ->
        incr calls;
        match Shortest.bfs_path g s t with Some p -> [ (1.0, p) ] | None -> [])
  in
  ignore (Oblivious.distribution obl 0 2);
  ignore (Oblivious.distribution obl 0 2);
  Alcotest.(check int) "generator called once" 1 !calls

let test_wrapper_rejects_diagonal () =
  let g = Gen.cycle 5 in
  let obl = Deterministic.shortest_path g in
  Alcotest.check_raises "s = t" (Invalid_argument "Oblivious.distribution: s = t")
    (fun () -> ignore (Oblivious.distribution obl 1 1))

(* Valiant *)

let test_bitfix_path () =
  let g = Gen.hypercube 3 in
  let p = Valiant.bitfix_path g 0 7 in
  Alcotest.(check int) "three hops" 3 (Path.hops p);
  Alcotest.(check (array int)) "lowest bit first" [| 0; 1; 3; 7 |] (Path.vertices g p)

let test_valiant_valid () =
  let g = Gen.hypercube 3 in
  let obl = Valiant.routing g in
  check_distribution_valid g obl [ (0, 7); (1, 6); (2, 3) ]

let test_valiant_rejects_non_hypercube () =
  let g = Gen.cycle 5 in
  Alcotest.check_raises "not a power of two"
    (Invalid_argument "Valiant: vertex count is not a power of two") (fun () ->
      ignore (Valiant.routing g))

let test_valiant_competitive_on_permutations () =
  (* Valiant's trick keeps expected congestion O(1) on permutations. *)
  let g = Gen.hypercube 5 in
  let obl = Valiant.routing g in
  let rng = Rng.create 7 in
  let worst = ref 0.0 in
  for _ = 1 to 3 do
    let d = Demand.random_permutation rng (Graph.n g) in
    worst := Float.max !worst (Oblivious.congestion obl d)
  done;
  Alcotest.(check bool) "bounded congestion" true (!worst <= 4.0)

let test_valiant_beats_ecube_on_bit_reversal () =
  (* The KKT91 separation: deterministic e-cube suffers Θ(√n) on
     bit-reversal, Valiant stays polylog. *)
  let d_dim = 6 in
  let g = Gen.hypercube d_dim in
  let demand = Demand.bit_reversal d_dim in
  let ecube_cong = Oblivious.congestion (Deterministic.ecube g) demand in
  let valiant_cong = Oblivious.congestion (Valiant.routing g) demand in
  Alcotest.(check bool)
    (Printf.sprintf "ecube %.1f >> valiant %.2f" ecube_cong valiant_cong)
    true
    (ecube_cong >= 2.0 *. valiant_cong);
  (* e-cube on bit reversal funnels 2^{d/2} packets through middle edges. *)
  Alcotest.(check bool) "ecube sqrt-n-ish" true (ecube_cong >= 4.0)

let test_generalized_valiant_matches_classic_shape () =
  (* On the hypercube, generalized Valiant over e-cube IS Valiant's trick. *)
  let g = Gen.hypercube 4 in
  let classic = Valiant.routing g in
  let general = Valiant.generalized ~base:(Deterministic.ecube g) in
  let d = Demand.bit_reversal 4 in
  let c1 = Oblivious.congestion classic d in
  let c2 = Oblivious.congestion general d in
  Alcotest.(check (float 1e-9)) "identical congestion" c1 c2

let test_generalized_valiant_on_torus () =
  (* Random-intermediate routing on a torus spreads the ring-shift load
     that dimension-order routing concentrates. *)
  let g = Gen.torus 4 4 in
  let base = Deterministic.xy_grid ~cols:4 (Gen.grid 4 4) in
  ignore base;
  let det = Deterministic.shortest_path g in
  let general = Valiant.generalized ~base:det in
  check_distribution_valid g general [ (0, 10); (3, 12) ];
  let d = Demand.ring_shift ~n:16 ~shift:8 in
  Alcotest.(check bool) "spreads at least as well" true
    (Oblivious.congestion general d <= Oblivious.congestion det d +. 1e-9)

(* Deterministic baselines *)

let test_ecube_single_path () =
  let g = Gen.hypercube 4 in
  let obl = Deterministic.ecube g in
  Alcotest.(check int) "1-sparse" 1 (Oblivious.support_sparsity obl [ (0, 15); (3, 12) ])

let test_shortest_path_routing () =
  let g = Gen.grid 3 3 in
  let obl = Deterministic.shortest_path g in
  check_distribution_valid g obl [ (0, 8); (2, 6) ];
  let dist = Oblivious.distribution obl 0 8 in
  List.iter (fun (_, p) -> Alcotest.(check int) "shortest" 4 (Path.hops p)) dist

let test_xy_grid_routing () =
  let g = Gen.grid 4 4 in
  let obl = Deterministic.xy_grid ~cols:4 g in
  check_distribution_valid g obl [ (0, 15); (3, 12); (5, 10) ];
  (* Row first, then column: 0 -> 3 -> 15. *)
  let _, p = List.hd (Oblivious.distribution obl 0 15) in
  Alcotest.(check (array int)) "row then column" [| 0; 1; 2; 3; 7; 11; 15 |]
    (Path.vertices g p)

let test_xy_grid_transpose_congestion () =
  (* XY routing on the transpose-like demand concentrates on the corners'
     rows/columns; a sampled semi-oblivious beats it. *)
  let side = 5 in
  let g = Gen.grid side side in
  let obl = Deterministic.xy_grid ~cols:side g in
  (* Transpose demand on the grid: (r,c) -> (c,r). *)
  let d =
    Demand.of_list
      (List.concat_map
         (fun r ->
           List.filter_map
             (fun c -> if r = c then None else Some ((r * side) + c, (c * side) + r, 1.0))
             (List.init side Fun.id))
         (List.init side Fun.id))
  in
  let xy_cong = Oblivious.congestion obl d in
  Alcotest.(check bool) "transpose hurts xy" true (xy_cong >= 3.0)

(* KSP *)

let test_ksp_spread () =
  let g = Gen.grid 3 3 in
  let obl = Ksp.routing ~k:4 g in
  let dist = Oblivious.distribution obl 0 8 in
  Alcotest.(check int) "four paths" 4 (List.length dist);
  List.iter (fun (w, _) -> Alcotest.(check (float 1e-9)) "uniform" 0.25 w) dist

let test_ksp_handles_scarce_paths () =
  let g = Gen.path_graph 4 in
  let obl = Ksp.routing ~k:5 g in
  Alcotest.(check int) "only one simple path" 1
    (List.length (Oblivious.distribution obl 0 3))

(* FRT *)

let test_frt_routes_valid () =
  let rng = Rng.create 3 in
  let g = Gen.grid 4 4 in
  let tree = Frt.build rng g ~length:(fun _ -> 1.0) in
  Alcotest.(check bool) "levels positive" true (Frt.levels tree >= 1);
  for s = 0 to 15 do
    for t = 0 to 15 do
      if s <> t then begin
        let p = Frt.route tree s t in
        Alcotest.(check int) "src" s p.Path.src;
        Alcotest.(check int) "dst" t p.Path.dst;
        Alcotest.(check bool) "simple" true (Path.is_simple g p)
      end
    done
  done

let test_frt_trivial_pair () =
  let rng = Rng.create 3 in
  let g = Gen.cycle 5 in
  let tree = Frt.build rng g ~length:(fun _ -> 1.0) in
  Alcotest.(check int) "self route empty" 0 (Path.hops (Frt.route tree 2 2))

let test_frt_consistent_routing () =
  (* Same tree → same route every time (it is deterministic given the tree). *)
  let rng = Rng.create 11 in
  let g = Gen.grid 3 3 in
  let tree = Frt.build rng g ~length:(fun _ -> 1.0) in
  let p1 = Frt.route tree 0 8 and p2 = Frt.route tree 0 8 in
  Alcotest.(check bool) "deterministic" true (Path.equal p1 p2)

let test_frt_stretch_reasonable () =
  (* Expected stretch is O(log n); check the average over pairs is modest
     for a fixed seed. *)
  let rng = Rng.create 5 in
  let g = Gen.grid 4 4 in
  let tree = Frt.build rng g ~length:(fun _ -> 1.0) in
  let hops = Shortest.all_pairs_hops g in
  let total_stretch = ref 0.0 and count = ref 0 in
  for s = 0 to 15 do
    for t = 0 to 15 do
      if s <> t then begin
        let p = Frt.route tree s t in
        total_stretch := !total_stretch +. (float_of_int (Path.hops p) /. float_of_int hops.(s).(t));
        incr count
      end
    done
  done;
  let avg = !total_stretch /. float_of_int !count in
  Alcotest.(check bool) (Printf.sprintf "avg stretch %.2f" avg) true (avg <= 8.0)

let test_frt_cluster_centers () =
  let rng = Rng.create 7 in
  let g = Gen.cycle 6 in
  let tree = Frt.build rng g ~length:(fun _ -> 1.0) in
  for v = 0 to 5 do
    Alcotest.(check int) "level 0 singleton" v (Frt.cluster_center tree v 0)
  done;
  (* Top level: everyone shares a center. *)
  let top = Frt.levels tree in
  let c0 = Frt.cluster_center tree 0 top in
  for v = 1 to 5 do
    Alcotest.(check int) "shared top center" c0 (Frt.cluster_center tree v top)
  done

let test_frt_rejects_disconnected () =
  let b = Graph.Builder.create 4 in
  ignore (Graph.Builder.add_edge b 0 1);
  ignore (Graph.Builder.add_edge b 2 3);
  let g = Graph.Builder.build b in
  Alcotest.check_raises "disconnected"
    (Invalid_argument
       "Frt.build: graph is disconnected (vertex 2 is unreachable from \
        vertex 0)")
    (fun () -> ignore (Frt.build (Rng.create 1) g ~length:(fun _ -> 1.0)))

let test_frt_hub_cache_budget () =
  (* A starvation-level hub cache budget forces evictions but must not
     change any route. *)
  let g = Gen.grid 4 4 in
  let length _ = 1.0 in
  let corners = [ 0; 3; 5; 10; 12; 15 ] in
  let pairs =
    List.concat_map
      (fun s ->
        List.filter_map (fun t -> if s = t then None else Some (s, t)) corners)
      corners
  in
  let routes tree = List.map (fun (s, t) -> Frt.route tree s t) pairs in
  let reference = routes (Frt.build (Rng.create 77) g ~length) in
  let evict = Obs.counter "frt.hub_evict" in
  let before = Obs.counter_value evict in
  Frt.set_hub_cache_budget (Some 1);
  Fun.protect
    ~finally:(fun () -> Frt.set_hub_cache_budget None)
    (fun () ->
      let tiny = Frt.build (Rng.create 77) g ~length in
      let got = routes tiny in
      Alcotest.(check bool) "routes independent of budget" true
        (List.for_all2 Path.equal reference got));
  Alcotest.(check bool) "evictions counted" true
    (Obs.counter_value evict > before)

(* Räcke *)

let test_racke_valid () =
  let rng = Rng.create 13 in
  let g = Gen.grid 3 3 in
  let obl = Racke.routing rng ~trees:6 g in
  check_distribution_valid g obl [ (0, 8); (1, 7); (3, 5) ]

let test_racke_support_bounded_by_trees () =
  let rng = Rng.create 13 in
  let g = Gen.grid 3 3 in
  let obl = Racke.routing rng ~trees:5 g in
  Alcotest.(check bool) "support ≤ trees" true
    (Oblivious.support_sparsity obl [ (0, 8) ] <= 5)

let test_racke_competitive_small () =
  (* On a 3x3 grid with a handful of demands, Räcke should stay within a
     moderate factor of optimal. *)
  let rng = Rng.create 17 in
  let g = Gen.grid 3 3 in
  let obl = Racke.routing rng g in
  let d = Demand.of_list [ (0, 8, 1.0); (2, 6, 1.0); (1, 7, 1.0) ] in
  let cong = Oblivious.congestion obl d in
  let opt = Min_congestion.lp_unrestricted g d in
  Alcotest.(check bool)
    (Printf.sprintf "racke %.2f vs opt %.2f" cong opt)
    true
    (cong <= 8.0 *. opt)

let test_racke_spreads_on_two_cliques () =
  (* On the two-cliques gadget a capacity-aware routing must spread the
     cross traffic over many bridge edges; a single shortest path cannot. *)
  let rng = Rng.create 19 in
  let n = 6 in
  let g = Gen.two_cliques n in
  let obl = Racke.routing rng g in
  let d = Demand.single_pair 0 (n + 1) (float_of_int n) in
  let racke_cong = Oblivious.congestion obl d in
  let det_cong = Oblivious.congestion (Deterministic.shortest_path g) d in
  Alcotest.(check bool)
    (Printf.sprintf "racke %.2f < deterministic %.2f" racke_cong det_cong)
    true (racke_cong < det_cong)

let test_tree_loads_positive () =
  let rng = Rng.create 23 in
  let g = Gen.cycle 6 in
  let tree = Frt.build rng g ~length:(fun _ -> 1.0) in
  let loads = Racke.tree_loads g tree in
  Alcotest.(check int) "per edge" (Graph.m g) (Array.length loads);
  Alcotest.(check bool) "some edge carries load" true
    (Array.exists (fun l -> l > 0.0) loads)

(* Spanning-tree routings *)

module Trees = Sso_oblivious.Trees
module Tree = Sso_graph.Tree

let test_single_tree_routing_valid () =
  let g = Gen.grid 3 3 in
  let tree = Tree.bfs_tree g 4 in
  let obl = Trees.single g tree in
  check_distribution_valid g obl [ (0, 8); (2, 6) ];
  Alcotest.(check int) "1-sparse" 1 (Oblivious.support_sparsity obl [ (0, 8) ])

let test_single_tree_congests () =
  (* On a cycle, tree routing must send some adjacent pair the long way
     around or funnel everything through shared edges: routing the full
     rotation costs more than the optimal 1. *)
  let g = Gen.cycle 8 in
  let tree = Tree.bfs_tree g 0 in
  let obl = Trees.single g tree in
  let d = Demand.ring_shift ~n:8 ~shift:1 in
  Alcotest.(check bool) "tree pays" true (Oblivious.congestion obl d >= 2.0)

let test_uniform_trees_routing_valid () =
  let rng = Rng.create 29 in
  let g = Gen.grid 3 3 in
  let obl = Trees.uniform rng ~count:5 g in
  check_distribution_valid g obl [ (0, 8); (3, 5) ];
  Alcotest.(check bool) "support ≤ trees" true
    (Oblivious.support_sparsity obl [ (0, 8) ] <= 5)

let test_uniform_trees_beat_single () =
  let rng = Rng.create 31 in
  let g = Gen.torus 4 4 in
  let single = Trees.single g (Tree.bfs_tree g 0) in
  let mixture = Trees.uniform rng ~count:8 g in
  let d = Demand.ring_shift ~n:16 ~shift:5 in
  Alcotest.(check bool) "mixture spreads better" true
    (Oblivious.congestion mixture d <= Oblivious.congestion single d)

(* Hop-constrained *)

let test_hop_constrained_respects_budget () =
  let g = Gen.grid 4 4 in
  let h = 6 in
  let obl = Hop_constrained.routing ~stretch:2 ~max_hops:h g in
  List.iter
    (fun (s, t) ->
      List.iter
        (fun (_, p) ->
          Alcotest.(check bool) "within stretched budget" true (Path.hops p <= 2 * h))
        (Oblivious.distribution obl s t))
    [ (0, 15); (3, 12); (0, 5) ]

let test_hop_constrained_diverse () =
  (* On multi_path [3;3;3] the three disjoint routes should all appear. *)
  let g = Gen.multi_path [ 3; 3; 3 ] in
  let obl = Hop_constrained.routing ~paths_per_pair:6 ~max_hops:3 g in
  let dist = Oblivious.distribution obl 0 1 in
  Alcotest.(check int) "three disjoint routes found" 3 (List.length dist)

let test_hop_constrained_unreachable () =
  let g = Gen.path_graph 6 in
  let obl = Hop_constrained.routing ~stretch:1 ~max_hops:2 g in
  Alcotest.(check bool) "raises for unreachable pair" true
    (try
       ignore (Oblivious.distribution obl 0 5);
       false
     with Invalid_argument _ -> true)

(* Extra coverage *)

let test_oblivious_dilation () =
  let g = Gen.path_graph 5 in
  let obl = Deterministic.shortest_path g in
  let d = Demand.of_list [ (0, 4, 1.0); (1, 2, 1.0) ] in
  Alcotest.(check int) "longest support path" 4 (Oblivious.dilation obl d)

let test_valiant_support_bounded () =
  let g = Gen.hypercube 4 in
  let obl = Valiant.routing g in
  let dist = Oblivious.distribution obl 0 15 in
  (* One path per intermediate, before dedup: at most n. *)
  Alcotest.(check bool) "support <= n" true (List.length dist <= 16);
  Alcotest.(check bool) "support substantial" true (List.length dist >= 8)

let test_racke_deterministic_given_seed () =
  let g = Gen.grid 3 3 in
  let r1 = Racke.routing (Rng.create 5) ~trees:4 g in
  let r2 = Racke.routing (Rng.create 5) ~trees:4 g in
  let d1 = Oblivious.distribution r1 0 8 and d2 = Oblivious.distribution r2 0 8 in
  Alcotest.(check int) "same support size" (List.length d1) (List.length d2);
  List.iter2
    (fun (w1, p1) (w2, p2) ->
      Alcotest.(check (float 1e-12)) "same weight" w1 w2;
      Alcotest.(check bool) "same path" true (Path.equal p1 p2))
    d1 d2

let test_frt_levels_bounded () =
  (* Levels ~ log2(diameter) + O(1) with unit lengths. *)
  let rng = Rng.create 9 in
  let g = Gen.grid 5 5 in
  let tree = Frt.build rng g ~length:(fun _ -> 1.0) in
  Alcotest.(check bool) "levels sane" true (Frt.levels tree >= 3 && Frt.levels tree <= 8)

let test_hop_constrained_path_count_bounded () =
  let g = Gen.grid 4 4 in
  let obl = Hop_constrained.routing ~paths_per_pair:3 ~max_hops:6 g in
  Alcotest.(check bool) "at most 3 paths" true
    (List.length (Oblivious.distribution obl 0 15) <= 3)

let test_ecube_is_shortest_on_cube () =
  let g = Gen.hypercube 4 in
  let obl = Deterministic.ecube g in
  for t = 1 to 15 do
    let _, p = List.hd (Oblivious.distribution obl 0 t) in
    (* e-cube paths have exactly popcount(t) hops from vertex 0. *)
    let rec popcount v = if v = 0 then 0 else (v land 1) + popcount (v lsr 1) in
    Alcotest.(check int) "greedy is shortest" (popcount t) (Path.hops p)
  done

let test_frt_forest_jobs_invariant () =
  (* Bit-identical forests at any job count: the batched ball-growing
     schedule is a function of the claim state alone, and batches merge
     serially in permutation order. *)
  let g = Gen.random_regular (Rng.create 51) 1000 4 in
  let with_pool jobs f =
    let p = Pool.create ~jobs () in
    Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)
  in
  let build pool = Racke.forest ~pool (Rng.create 52) ~trees:3 ~batch:2 g in
  let f1 = with_pool 1 build and f4 = with_pool 4 build in
  Alcotest.(check bool) "forests bit-identical across job counts" true
    (List.map Frt.to_parts f1 = List.map Frt.to_parts f4)

(* Cross-cutting properties *)

(* Executable spec for Frt.build: the historical all-pairs construction —
   full distance matrix, per-vertex scan of the permutation for the first
   center within the level radius.  Replays the exact draw order and
   arithmetic of the ball-growing build, so chains and cluster ids must
   match it bitwise. *)
let reference_frt_parts seed g ~lengths =
  let n = Graph.n g in
  let rng = Rng.create seed in
  let clamped = Array.map (Float.max 1e-9) lengths in
  let weight e = clamped.(e) in
  let dist = Array.init n (fun s -> fst (Shortest.dijkstra g ~weight s)) in
  let delta = Array.fold_left Float.min infinity clamped in
  (* The build shortcuts delta_min to the minimum clamped edge length;
     check that against the real minimum pairwise distance. *)
  let min_pair = ref infinity in
  for s = 0 to n - 1 do
    for t = 0 to n - 1 do
      if s <> t && dist.(s).(t) < !min_pair then min_pair := dist.(s).(t)
    done
  done;
  assert (!min_pair = delta);
  let ecc src =
    let best = ref 0.0 and far = ref src in
    for v = 0 to n - 1 do
      if dist.(src).(v) > !best then begin
        best := dist.(src).(v);
        far := v
      end
    done;
    (!best, !far)
  in
  let diameter_ub =
    if n <= 1 then 0.0
    else
      let ecc0, far = ecc 0 in
      let ecc1, _ = ecc far in
      2.0 *. Float.min ecc0 ecc1
  in
  let diameter = diameter_ub /. delta in
  let beta = 1.0 +. Rng.float rng in
  let levels =
    let rec go i r = if r >= diameter then i else go (i + 1) (r *. 2.0) in
    go 1 beta
  in
  let pi = Rng.permutation rng n in
  let chain = Array.init n (fun v -> Array.make (levels + 1) v) in
  let cluster_id = Array.init n (fun v -> Array.make (levels + 1) v) in
  let next_id = ref n in
  let fresh () =
    let id = !next_id in
    incr next_id;
    id
  in
  let top_id = fresh () in
  for v = 0 to n - 1 do
    chain.(v).(levels) <- pi.(0);
    cluster_id.(v).(levels) <- top_id
  done;
  for i = levels - 1 downto 1 do
    let radius = beta *. Float.pow 2.0 (float_of_int (i - 1)) *. delta in
    for v = 0 to n - 1 do
      let rec first k =
        if dist.(pi.(k)).(v) <= radius then pi.(k) else first (k + 1)
      in
      chain.(v).(i) <- first 0
    done;
    let ids = Hashtbl.create 64 in
    for v = 0 to n - 1 do
      let key = (cluster_id.(v).(i + 1), chain.(v).(i)) in
      let id =
        match Hashtbl.find_opt ids key with
        | Some id -> id
        | None ->
            let id = fresh () in
            Hashtbl.add ids key id;
            id
      in
      cluster_id.(v).(i) <- id
    done
  done;
  (levels, chain, cluster_id)

let prop_frt_ball_growing_matches_all_pairs =
  QCheck.Test.make
    ~name:"ball-growing FRT equals the all-pairs construction" ~count:25
    QCheck.small_int (fun seed ->
      let g =
        if seed mod 2 = 0 then Gen.grid 4 4
        else Gen.erdos_renyi (Rng.create (seed + 900)) 14 0.35
      in
      if not (Graph.is_connected g) then true
      else begin
        let lr = Rng.create (seed + 1000) in
        let lengths = Array.init (Graph.m g) (fun _ -> Rng.float lr *. 3.0) in
        let tree = Frt.build (Rng.create seed) g ~length:(fun e -> lengths.(e)) in
        let parts = Frt.to_parts tree in
        let levels, chain, cluster_id = reference_frt_parts seed g ~lengths in
        parts.Frt.p_levels = levels
        && parts.Frt.p_chain = chain
        && parts.Frt.p_cluster_id = cluster_id
      end)

let prop_sample_matches_support =
  QCheck.Test.make ~name:"samples always come from the declared support" ~count:40
    QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      let g = Gen.grid 3 3 in
      let obl = Ksp.routing ~k:3 g in
      let s = Rng.int rng 9 in
      let t = (s + 1 + Rng.int rng 8) mod 9 in
      if s = t then true
      else begin
        let support = List.map snd (Oblivious.distribution obl s t) in
        let p = Oblivious.sample rng obl s t in
        List.exists (Path.equal p) support
      end)

let prop_to_routing_congestion_matches =
  QCheck.Test.make ~name:"Oblivious.congestion agrees with Routing.congestion" ~count:30
    QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      let g = Gen.grid 3 3 in
      let obl = Ksp.routing ~k:2 g in
      let d = Demand.random_pairs rng ~n:9 ~pairs:4 in
      let via_routing =
        Routing.congestion g (Oblivious.to_routing obl (Demand.support d)) d
      in
      Float.abs (Oblivious.congestion obl d -. via_routing) < 1e-9)

let () =
  Alcotest.run "oblivious"
    [
      ( "wrapper",
        [
          Alcotest.test_case "memoizes" `Quick test_wrapper_memoizes;
          Alcotest.test_case "rejects diagonal" `Quick test_wrapper_rejects_diagonal;
        ] );
      ( "valiant",
        [
          Alcotest.test_case "bitfix path" `Quick test_bitfix_path;
          Alcotest.test_case "valid distributions" `Quick test_valiant_valid;
          Alcotest.test_case "rejects non-hypercube" `Quick test_valiant_rejects_non_hypercube;
          Alcotest.test_case "competitive on permutations" `Slow
            test_valiant_competitive_on_permutations;
          Alcotest.test_case "beats ecube on bit reversal" `Slow
            test_valiant_beats_ecube_on_bit_reversal;
          Alcotest.test_case "generalized = classic on cube" `Quick
            test_generalized_valiant_matches_classic_shape;
          Alcotest.test_case "generalized on torus" `Quick test_generalized_valiant_on_torus;
        ] );
      ( "deterministic",
        [
          Alcotest.test_case "ecube 1-sparse" `Quick test_ecube_single_path;
          Alcotest.test_case "shortest path" `Quick test_shortest_path_routing;
          Alcotest.test_case "xy grid" `Quick test_xy_grid_routing;
          Alcotest.test_case "xy transpose congestion" `Quick
            test_xy_grid_transpose_congestion;
        ] );
      ( "ksp",
        [
          Alcotest.test_case "spread" `Quick test_ksp_spread;
          Alcotest.test_case "scarce paths" `Quick test_ksp_handles_scarce_paths;
        ] );
      ( "frt",
        [
          Alcotest.test_case "routes valid" `Quick test_frt_routes_valid;
          Alcotest.test_case "trivial pair" `Quick test_frt_trivial_pair;
          Alcotest.test_case "consistent" `Quick test_frt_consistent_routing;
          Alcotest.test_case "stretch reasonable" `Quick test_frt_stretch_reasonable;
          Alcotest.test_case "cluster centers" `Quick test_frt_cluster_centers;
          Alcotest.test_case "rejects disconnected" `Quick test_frt_rejects_disconnected;
          Alcotest.test_case "hub cache budget" `Quick test_frt_hub_cache_budget;
        ] );
      ( "racke",
        [
          Alcotest.test_case "valid" `Quick test_racke_valid;
          Alcotest.test_case "support bounded" `Quick test_racke_support_bounded_by_trees;
          Alcotest.test_case "competitive small" `Slow test_racke_competitive_small;
          Alcotest.test_case "spreads on two cliques" `Slow test_racke_spreads_on_two_cliques;
          Alcotest.test_case "tree loads" `Quick test_tree_loads_positive;
          Alcotest.test_case "forest jobs invariant" `Quick
            test_frt_forest_jobs_invariant;
        ] );
      ( "trees",
        [
          Alcotest.test_case "single valid" `Quick test_single_tree_routing_valid;
          Alcotest.test_case "single congests" `Quick test_single_tree_congests;
          Alcotest.test_case "uniform valid" `Quick test_uniform_trees_routing_valid;
          Alcotest.test_case "mixture beats single" `Quick test_uniform_trees_beat_single;
        ] );
      ( "hop constrained",
        [
          Alcotest.test_case "respects budget" `Quick test_hop_constrained_respects_budget;
          Alcotest.test_case "diverse" `Quick test_hop_constrained_diverse;
          Alcotest.test_case "unreachable" `Quick test_hop_constrained_unreachable;
        ] );
      ( "extra",
        [
          Alcotest.test_case "dilation" `Quick test_oblivious_dilation;
          Alcotest.test_case "valiant support" `Quick test_valiant_support_bounded;
          Alcotest.test_case "racke deterministic" `Quick test_racke_deterministic_given_seed;
          Alcotest.test_case "frt levels" `Quick test_frt_levels_bounded;
          Alcotest.test_case "hop-constrained count" `Quick
            test_hop_constrained_path_count_bounded;
          Alcotest.test_case "ecube shortest" `Quick test_ecube_is_shortest_on_cube;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_frt_ball_growing_matches_all_pairs;
            prop_sample_matches_support;
            prop_to_routing_congestion_matches;
          ] );
    ]
