(* Tests for the graph substrate: construction, shortest paths, k-shortest
   paths, max-flow/min-cut, matching, generators, serialization. *)

module Rng = Sso_prng.Rng
module Graph = Sso_graph.Graph
module Path = Sso_graph.Path
module Shortest = Sso_graph.Shortest
module Yen = Sso_graph.Yen
module Maxflow = Sso_graph.Maxflow
module Matching = Sso_graph.Matching
module Gen = Sso_graph.Gen
module Gio = Sso_graph.Gio
module Arena = Sso_graph.Arena

let triangle () =
  let b = Graph.Builder.create 3 in
  ignore (Graph.Builder.add_edge b 0 1);
  ignore (Graph.Builder.add_edge b 1 2);
  ignore (Graph.Builder.add_edge b 0 2);
  Graph.Builder.build b

(* Graph basics *)

let test_builder_basics () =
  let g = triangle () in
  Alcotest.(check int) "n" 3 (Graph.n g);
  Alcotest.(check int) "m" 3 (Graph.m g);
  Alcotest.(check (pair int int)) "endpoints" (0, 1) (Graph.endpoints g 0);
  Alcotest.(check int) "other end" 1 (Graph.other_end g 0 0);
  Alcotest.(check int) "degree" 2 (Graph.degree g 1);
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

let test_builder_rejects_self_loop () =
  let b = Graph.Builder.create 2 in
  Alcotest.check_raises "self-loop" (Invalid_argument "Graph.Builder.add_edge: self-loop")
    (fun () -> ignore (Graph.Builder.add_edge b 1 1))

let test_builder_rejects_bad_cap () =
  let b = Graph.Builder.create 2 in
  Alcotest.check_raises "bad cap"
    (Invalid_argument "Graph.Builder.add_edge: capacity must be positive") (fun () ->
      ignore (Graph.Builder.add_edge ~cap:0.0 b 0 1))

let test_parallel_edges () =
  let b = Graph.Builder.create 2 in
  let e1 = Graph.Builder.add_edge b 0 1 in
  let e2 = Graph.Builder.add_edge b 0 1 in
  let g = Graph.Builder.build b in
  Alcotest.(check bool) "distinct ids" true (e1 <> e2);
  Alcotest.(check int) "m" 2 (Graph.m g);
  Alcotest.(check int) "degree counts multiplicity" 2 (Graph.degree g 0)

let test_disconnected () =
  let b = Graph.Builder.create 4 in
  ignore (Graph.Builder.add_edge b 0 1);
  ignore (Graph.Builder.add_edge b 2 3);
  Alcotest.(check bool) "disconnected" false (Graph.is_connected (Graph.Builder.build b))

let test_total_capacity () =
  let b = Graph.Builder.create 3 in
  ignore (Graph.Builder.add_edge ~cap:2.0 b 0 1);
  ignore (Graph.Builder.add_edge ~cap:3.5 b 1 2);
  Alcotest.(check (float 1e-9)) "sum" 5.5 (Graph.total_capacity (Graph.Builder.build b))

(* Paths *)

let test_path_of_vertices () =
  let g = Gen.path_graph 5 in
  let p = Path.of_vertices g [ 0; 1; 2; 3 ] in
  Alcotest.(check int) "hops" 3 (Path.hops p);
  Alcotest.(check (array int)) "vertices" [| 0; 1; 2; 3 |] (Path.vertices g p);
  Alcotest.(check bool) "simple" true (Path.is_simple g p)

let test_path_trivial () =
  let g = triangle () in
  let p = Path.trivial 1 in
  Alcotest.(check int) "hops" 0 (Path.hops p);
  Alcotest.(check bool) "simple" true (Path.is_simple g p)

let test_path_of_edges_validates () =
  let g = Gen.path_graph 4 in
  Alcotest.check_raises "broken walk"
    (Invalid_argument "Path.of_edges: edges do not form a walk") (fun () ->
      ignore (Path.of_edges g ~src:0 ~dst:3 [| 0; 2 |]))

let test_path_simplify () =
  let g = Gen.cycle 4 in
  (* Walk 0-1-2-1-0-3: should simplify to 0-3. *)
  let e01 = 0 and e12 = 1 and e30 = 3 in
  let walk = Path.of_edges g ~src:0 ~dst:3 [| e01; e12; e12; e01; e30 |] in
  let simple = Path.simplify g walk in
  Alcotest.(check bool) "simple" true (Path.is_simple g simple);
  Alcotest.(check int) "direct" 1 (Path.hops simple);
  Alcotest.(check (array int)) "vertices" [| 0; 3 |] (Path.vertices g simple)

let test_path_simplify_identity () =
  let g = Gen.grid 3 3 in
  let p = Path.of_vertices g [ 0; 1; 2; 5; 8 ] in
  Alcotest.(check bool) "unchanged" true (Path.equal p (Path.simplify g p))

let test_path_concat () =
  let g = Gen.path_graph 5 in
  let p = Path.of_vertices g [ 0; 1; 2 ] in
  let q = Path.of_vertices g [ 2; 3; 4 ] in
  let r = Path.concat g p q in
  Alcotest.(check int) "hops" 4 (Path.hops r);
  Alcotest.(check bool) "simple" true (Path.is_simple g r)

let test_path_concat_cancels () =
  let g = Gen.path_graph 5 in
  let p = Path.of_vertices g [ 0; 1; 2; 3 ] in
  let q = Path.of_vertices g [ 3; 2; 1 ] in
  let r = Path.concat g p q in
  Alcotest.(check (array int)) "back-tracking removed" [| 0; 1 |] (Path.vertices g r)

let test_path_reverse () =
  let g = Gen.path_graph 4 in
  let p = Path.of_vertices g [ 0; 1; 2 ] in
  let r = Path.reverse p in
  Alcotest.(check (array int)) "reversed" [| 2; 1; 0 |] (Path.vertices g r)

let test_path_weight () =
  let g = Gen.path_graph 4 in
  let p = Path.of_vertices g [ 0; 1; 2; 3 ] in
  Alcotest.(check (float 1e-9)) "weight" 6.0
    (Path.weight (fun e -> float_of_int (e + 1)) p)

(* Shortest paths *)

let test_bfs_dist () =
  let g = Gen.grid 3 3 in
  let dist = Shortest.bfs_dist g 0 in
  Alcotest.(check int) "corner to corner" 4 dist.(8);
  Alcotest.(check int) "self" 0 dist.(0)

let test_bfs_path () =
  let g = Gen.grid 3 3 in
  match Shortest.bfs_path g 0 8 with
  | None -> Alcotest.fail "expected a path"
  | Some p ->
      Alcotest.(check int) "min hops" 4 (Path.hops p);
      Alcotest.(check bool) "simple" true (Path.is_simple g p)

let test_dijkstra_weighted () =
  (* Square 0-1-3 and 0-2-3; make the 0-1 edge heavy. *)
  let b = Graph.Builder.create 4 in
  let e01 = Graph.Builder.add_edge b 0 1 in
  ignore (Graph.Builder.add_edge b 1 3);
  ignore (Graph.Builder.add_edge b 0 2);
  ignore (Graph.Builder.add_edge b 2 3);
  let g = Graph.Builder.build b in
  let weight e = if e = e01 then 10.0 else 1.0 in
  match Shortest.dijkstra_path g ~weight 0 3 with
  | None -> Alcotest.fail "expected a path"
  | Some p -> Alcotest.(check (array int)) "avoids heavy edge" [| 0; 2; 3 |] (Path.vertices g p)

let test_dijkstra_dist_matches_bfs () =
  let rng = Rng.create 5 in
  let g = Gen.erdos_renyi rng 40 0.15 in
  let dist, _ = Shortest.dijkstra g ~weight:(fun _ -> 1.0) 0 in
  let hops = Shortest.bfs_dist g 0 in
  for v = 0 to Graph.n g - 1 do
    Alcotest.(check (float 1e-9))
      "unit dijkstra = bfs"
      (float_of_int hops.(v))
      dist.(v)
  done

let test_hop_limited_loose () =
  let g = Gen.grid 3 3 in
  (* With enough hops the hop-limited path matches the shortest path. *)
  match Shortest.hop_limited_path g ~weight:(fun _ -> 1.0) ~max_hops:10 0 8 with
  | None -> Alcotest.fail "expected a path"
  | Some p -> Alcotest.(check int) "hops" 4 (Path.hops p)

let test_hop_limited_tight () =
  (* Two routes 0→3: cheap long (3 hops, weight 0.3) vs pricey short
     (1 hop, weight 5).  Budget 2 forces the direct edge. *)
  let b = Graph.Builder.create 4 in
  let direct = Graph.Builder.add_edge b 0 3 in
  ignore (Graph.Builder.add_edge b 0 1);
  ignore (Graph.Builder.add_edge b 1 2);
  ignore (Graph.Builder.add_edge b 2 3);
  let g = Graph.Builder.build b in
  let weight e = if e = direct then 5.0 else 0.1 in
  (match Shortest.hop_limited_path g ~weight ~max_hops:2 0 3 with
  | None -> Alcotest.fail "expected a path"
  | Some p ->
      Alcotest.(check int) "forced direct" 1 (Path.hops p));
  match Shortest.hop_limited_path g ~weight ~max_hops:3 0 3 with
  | None -> Alcotest.fail "expected a path"
  | Some p -> Alcotest.(check int) "relaxed budget takes cheap route" 3 (Path.hops p)

let test_hop_limited_infeasible () =
  let g = Gen.path_graph 5 in
  Alcotest.(check bool)
    "budget too small" true
    (Shortest.hop_limited_path g ~weight:(fun _ -> 1.0) ~max_hops:3 0 4 = None)

let test_diameter () =
  Alcotest.(check int) "path graph" 4 (Shortest.diameter (Gen.path_graph 5));
  Alcotest.(check int) "hypercube" 4 (Shortest.diameter (Gen.hypercube 4))

let test_all_pairs_hops () =
  let g = Gen.cycle 6 in
  let d = Shortest.all_pairs_hops g in
  Alcotest.(check int) "opposite" 3 d.(0).(3);
  Alcotest.(check int) "adjacent" 1 d.(2).(3)

(* Truncated / multi-source Dijkstra balls *)

let test_ball_matches_full_dijkstra () =
  (* At every radius, the ball settles exactly the vertices the full run
     puts within it, with bit-identical distances. *)
  let g = Gen.random_regular (Rng.create 31) 40 4 in
  let wr = Rng.create 32 in
  let weights = Array.init (Graph.m g) (fun _ -> 0.25 +. Rng.float wr) in
  let full, _ = Shortest.dijkstra g ~weight:(fun e -> weights.(e)) 5 in
  let ws = Shortest.Workspace.create () in
  List.iter
    (fun radius ->
      let settled = Hashtbl.create 64 in
      Shortest.dijkstra_ball_into ws g ~weights ~radius ~sources:[| 5 |]
        (fun v d -> Hashtbl.replace settled v d);
      for v = 0 to Graph.n g - 1 do
        match Hashtbl.find_opt settled v with
        | Some d ->
            Alcotest.(check bool) "within radius" true (d <= radius);
            Alcotest.(check (float 0.0)) "distance bit-identical" full.(v) d
        | None -> Alcotest.(check bool) "outside radius" true (full.(v) > radius)
      done)
    [ 0.0; 0.7; 1.9; infinity ]

let test_ball_multi_source () =
  (* Multi-source distances are the pointwise minimum over the sources. *)
  let g = Gen.grid 5 5 in
  let weights = Array.make (Graph.m g) 1.0 in
  let d0, _ = Shortest.dijkstra g ~weight:(fun _ -> 1.0) 0 in
  let d24, _ = Shortest.dijkstra g ~weight:(fun _ -> 1.0) 24 in
  let ws = Shortest.Workspace.create () in
  let settled = Array.make 25 infinity in
  Shortest.dijkstra_ball_into ws g ~weights ~radius:infinity
    ~sources:[| 0; 24 |] (fun v d -> settled.(v) <- d);
  for v = 0 to 24 do
    Alcotest.(check (float 0.0)) "min over sources"
      (Float.min d0.(v) d24.(v))
      settled.(v)
  done

let test_ball_negative_radius_empty () =
  let g = Gen.grid 3 3 in
  let weights = Array.make (Graph.m g) 1.0 in
  let ws = Shortest.Workspace.create () in
  let count = ref 0 in
  Shortest.dijkstra_ball_into ws g ~weights ~radius:(-1.0) ~sources:[| 0 |]
    (fun _ _ -> incr count);
  Alcotest.(check int) "settles nothing" 0 !count

let test_ball_prune_equals_radius () =
  (* Pruning candidates past r under an infinite radius is the same run as
     radius r with no pruning (the prune hook sees tentative distances,
     which for an admitted vertex equal its settled distance). *)
  let g = Gen.random_regular (Rng.create 33) 30 4 in
  let wr = Rng.create 34 in
  let weights = Array.init (Graph.m g) (fun _ -> 0.5 +. Rng.float wr) in
  let ws = Shortest.Workspace.create () in
  let r = 2.0 in
  let a = Hashtbl.create 32 and b = Hashtbl.create 32 in
  Shortest.dijkstra_ball_into ws g ~weights ~radius:r ~sources:[| 3 |]
    (fun v d -> Hashtbl.replace a v d);
  Shortest.dijkstra_ball_into ws g ~weights ~radius:infinity
    ~prune:(fun _ nd -> nd > r)
    ~sources:[| 3 |]
    (fun v d -> Hashtbl.replace b v d);
  Alcotest.(check int) "same ball size" (Hashtbl.length a) (Hashtbl.length b);
  Hashtbl.iter
    (fun v d ->
      Alcotest.(check (float 0.0)) "same distance" d (Hashtbl.find b v))
    a

(* Yen's k shortest paths *)

let test_yen_counts_and_order () =
  let g = Gen.grid 3 3 in
  let paths = Yen.k_shortest g ~weight:(fun _ -> 1.0) ~k:6 0 8 in
  Alcotest.(check int) "found 6" 6 (List.length paths);
  let weights = List.map (Path.weight (fun _ -> 1.0)) paths in
  let sorted = List.sort compare weights in
  Alcotest.(check (list (float 1e-9))) "non-decreasing" sorted weights;
  (* The 3x3 grid has exactly 6 monotone shortest paths of 4 hops. *)
  List.iter (fun p -> Alcotest.(check int) "all shortest" 4 (Path.hops p)) paths

let test_yen_distinct_and_simple () =
  let g = Gen.grid 3 4 in
  let paths = Yen.k_shortest g ~weight:(fun _ -> 1.0) ~k:12 0 11 in
  let module PS = Set.Make (Path) in
  Alcotest.(check int) "all distinct" (List.length paths) (PS.cardinal (PS.of_list paths));
  List.iter
    (fun p ->
      Alcotest.(check bool) "simple" true (Path.is_simple g p);
      let vs = Path.vertices g p in
      Alcotest.(check int) "src" 0 vs.(0);
      Alcotest.(check int) "dst" 11 vs.(Array.length vs - 1))
    paths

let test_yen_exhausts () =
  let g = Gen.cycle 5 in
  (* Only two simple paths between any pair on a cycle. *)
  let paths = Yen.k_shortest g ~weight:(fun _ -> 1.0) ~k:10 0 2 in
  Alcotest.(check int) "exactly two" 2 (List.length paths)

let test_yen_trivial () =
  let g = triangle () in
  Alcotest.(check int) "s = t" 1 (List.length (Yen.k_shortest g ~weight:(fun _ -> 1.0) ~k:3 1 1))

(* Max-flow / min-cut *)

let test_cut_path () =
  let g = Gen.path_graph 5 in
  Alcotest.(check int) "path cut" 1 (Maxflow.cut g 0 4)

let test_cut_cycle () =
  let g = Gen.cycle 6 in
  Alcotest.(check int) "cycle cut" 2 (Maxflow.cut g 0 3)

let test_cut_hypercube () =
  let g = Gen.hypercube 3 in
  Alcotest.(check int) "hypercube cut = degree" 3 (Maxflow.cut g 0 7)

let test_cut_two_cliques () =
  let n = 6 in
  let g = Gen.two_cliques n in
  Alcotest.(check int) "cross-clique cut" n (Maxflow.cut g 0 (n + 1));
  Alcotest.(check int) "same-clique cut" (n - 1 + 1) (Maxflow.cut g 0 1)

let test_cut_parallel_edges () =
  let b = Graph.Builder.create 2 in
  for _ = 1 to 4 do
    ignore (Graph.Builder.add_edge b 0 1)
  done;
  let g = Graph.Builder.build b in
  Alcotest.(check int) "parallel multiplicity" 4 (Maxflow.cut g 0 1)

let test_cut_self () =
  let g = triangle () in
  Alcotest.(check int) "cut(v,v) = 0" 0 (Maxflow.cut g 1 1)

let test_max_flow_capacities () =
  let b = Graph.Builder.create 3 in
  ignore (Graph.Builder.add_edge ~cap:2.0 b 0 1);
  ignore (Graph.Builder.add_edge ~cap:1.0 b 1 2);
  ignore (Graph.Builder.add_edge ~cap:0.5 b 0 2);
  let g = Graph.Builder.build b in
  Alcotest.(check (float 1e-6)) "bottleneck respected" 1.5 (Maxflow.max_flow g 0 2)

let test_min_cut_edges_separate () =
  let g = Gen.c_graph 4 3 in
  let s = g.Gen.c_leaves1.(0) and t = g.Gen.c_leaves2.(0) in
  Alcotest.(check int) "leaf pair cut is 1" 1 (Maxflow.cut g.Gen.c_graph s t);
  let cut_edges = Maxflow.min_cut_edges g.Gen.c_graph s t in
  Alcotest.(check int) "one cut edge" 1 (List.length cut_edges)

let test_min_cut_edges_disconnect () =
  let rng = Rng.create 9 in
  let g = Gen.erdos_renyi rng 20 0.3 in
  let cut_edges = Maxflow.min_cut_edges g 0 19 in
  Alcotest.(check int) "cardinality matches cut value" (Maxflow.cut g 0 19)
    (List.length cut_edges);
  (* Removing the cut edges must disconnect 0 from 19. *)
  let removed = List.sort_uniq compare cut_edges in
  let blocked e = List.mem e removed in
  let dist, _ =
    Shortest.dijkstra g ~weight:(fun e -> if blocked e then infinity else 1.0) 0
  in
  Alcotest.(check bool) "disconnected after removal" true (dist.(19) = infinity)

(* Matching *)

let test_matching_perfect () =
  let adj l = [ l; (l + 1) mod 4 ] in
  let pairs = Matching.maximum ~left:4 ~right:4 adj in
  Alcotest.(check int) "perfect" 4 (Array.length pairs);
  let rs = Array.map snd pairs in
  Array.sort compare rs;
  Alcotest.(check (array int)) "right side covered" [| 0; 1; 2; 3 |] rs

let test_matching_partial () =
  (* Three left vertices all pointing at right vertex 0. *)
  let adj _ = [ 0 ] in
  let pairs = Matching.maximum ~left:3 ~right:1 adj in
  Alcotest.(check int) "only one match" 1 (Array.length pairs)

let test_matching_empty () =
  let pairs = Matching.maximum ~left:3 ~right:3 (fun _ -> []) in
  Alcotest.(check int) "no edges" 0 (Array.length pairs)

let prop_matching_valid =
  QCheck.Test.make ~name:"matching is a valid partial matching" ~count:100
    QCheck.(pair small_int (int_range 1 12))
    (fun (seed, size) ->
      let rng = Rng.create seed in
      let adjs =
        Array.init size (fun _ ->
            List.filter (fun _ -> Rng.bool rng) (List.init size Fun.id))
      in
      let pairs = Matching.maximum ~left:size ~right:size (fun l -> adjs.(l)) in
      let ls = Array.to_list (Array.map fst pairs) in
      let rs = Array.to_list (Array.map snd pairs) in
      List.length (List.sort_uniq compare ls) = List.length ls
      && List.length (List.sort_uniq compare rs) = List.length rs
      && Array.for_all (fun (l, r) -> List.mem r adjs.(l)) pairs)

(* Generators *)

let test_gen_hypercube () =
  let g = Gen.hypercube 4 in
  Alcotest.(check int) "n" 16 (Graph.n g);
  Alcotest.(check int) "m" 32 (Graph.m g);
  Alcotest.(check int) "regular" 4 (Graph.max_degree g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

let test_gen_grid () =
  let g = Gen.grid 4 5 in
  Alcotest.(check int) "n" 20 (Graph.n g);
  Alcotest.(check int) "m" 31 (Graph.m g)

let test_gen_torus () =
  let g = Gen.torus 4 4 in
  Alcotest.(check int) "n" 16 (Graph.n g);
  Alcotest.(check int) "m" 32 (Graph.m g);
  Alcotest.(check int) "4-regular" 4 (Graph.max_degree g)

let test_gen_complete () =
  let g = Gen.complete 6 in
  Alcotest.(check int) "m" 15 (Graph.m g)

let test_gen_random_regular () =
  let rng = Rng.create 3 in
  let g = Gen.random_regular rng 24 4 in
  Alcotest.(check int) "n" 24 (Graph.n g);
  Alcotest.(check int) "m" 48 (Graph.m g);
  for v = 0 to 23 do
    Alcotest.(check int) "regular" 4 (Graph.degree g v)
  done;
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

let test_gen_two_cliques () =
  let g = Gen.two_cliques 5 in
  Alcotest.(check int) "n" 10 (Graph.n g);
  Alcotest.(check int) "m" ((2 * 10) + 5) (Graph.m g)

let test_gen_c_graph () =
  let { Gen.c_graph = g; c_center1; c_leaves1; c_center2; c_leaves2; c_middles } =
    Gen.c_graph 6 3
  in
  Alcotest.(check int) "n" ((2 * 6) + 2 + 3) (Graph.n g);
  Alcotest.(check int) "m" ((2 * 6) + (2 * 3)) (Graph.m g);
  Alcotest.(check int) "leaves1" 6 (Array.length c_leaves1);
  Alcotest.(check int) "leaves2" 6 (Array.length c_leaves2);
  Alcotest.(check int) "middles" 3 (Array.length c_middles);
  Alcotest.(check int) "center1 degree" (6 + 3) (Graph.degree g c_center1);
  Alcotest.(check int) "center2 degree" (6 + 3) (Graph.degree g c_center2);
  Array.iter
    (fun mid -> Alcotest.(check int) "middle degree" 2 (Graph.degree g mid))
    c_middles;
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

let test_gen_g_graph () =
  let { Gen.g_graph = g; g_copies } = Gen.g_graph 16 in
  Alcotest.(check int) "copies = floor log n" 4 (List.length g_copies);
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  (* Copy for alpha = 1 has k = floor(sqrt 16) = 4 middles. *)
  let _, view1 = List.hd g_copies in
  Alcotest.(check int) "alpha=1 middles" 4 (Array.length view1.Gen.v_middles)

let test_gen_multi_path () =
  let g = Gen.multi_path [ 1; 3; 3 ] in
  Alcotest.(check int) "n" (2 + 0 + 2 + 2) (Graph.n g);
  Alcotest.(check int) "m" (1 + 3 + 3) (Graph.m g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  Alcotest.(check int) "three disjoint routes" 3 (Maxflow.cut g 0 1)

let test_gen_abilene () =
  let g, cities = Gen.abilene () in
  Alcotest.(check int) "n" 11 (Graph.n g);
  Alcotest.(check int) "m" 14 (Graph.m g);
  Alcotest.(check int) "labels" 11 (Array.length cities);
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

let test_gen_fat_tree () =
  let k = 4 in
  let g = Gen.fat_tree k in
  (* k=4: 4 cores + 4 pods x 4 switches = 20 vertices; per pod 4+4 edges. *)
  Alcotest.(check int) "n" 20 (Graph.n g);
  Alcotest.(check int) "m" 32 (Graph.m g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  (* Rich path diversity between edge switches in different pods. *)
  let edge_sw pod i = 4 + (pod * 4) + 2 + i in
  Alcotest.(check int) "cross-pod cut" 2 (Maxflow.cut g (edge_sw 0 0) (edge_sw 1 0))

let test_gen_butterfly () =
  let g = Gen.butterfly 3 in
  Alcotest.(check int) "n" (4 * 8) (Graph.n g);
  Alcotest.(check int) "m" (3 * 8 * 2) (Graph.m g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

let test_gen_de_bruijn () =
  let g = Gen.de_bruijn 4 in
  Alcotest.(check int) "n" 16 (Graph.n g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  (* Diameter of the de Bruijn graph is at most d. *)
  Alcotest.(check bool) "small diameter" true (Shortest.diameter g <= 4)

let test_gen_b4 () =
  let g, sites = Gen.b4 () in
  Alcotest.(check int) "n" 12 (Graph.n g);
  Alcotest.(check int) "m" 19 (Graph.m g);
  Alcotest.(check int) "labels" 12 (Array.length sites);
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  Alcotest.(check bool) "2-edge-connected" true (Maxflow.cut g 0 11 >= 2)

let test_gen_with_unit_caps () =
  let g, _ = Gen.abilene () in
  let u = Gen.with_unit_caps g in
  Alcotest.(check (float 1e-9)) "all caps one" (float_of_int (Graph.m g))
    (Graph.total_capacity u)

(* Heap *)

module Heap = Sso_graph.Heap

let test_heap_ordering () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h k (int_of_float k)) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  Alcotest.(check int) "size" 5 (Heap.size h);
  let order = List.init 5 (fun _ -> match Heap.pop h with Some (k, _) -> k | None -> nan) in
  Alcotest.(check (list (float 1e-9))) "ascending" [ 1.0; 2.0; 3.0; 4.0; 5.0 ] order;
  Alcotest.(check bool) "empty after" true (Heap.is_empty h);
  Alcotest.(check bool) "pop empty" true (Heap.pop h = None)

let test_heap_interleaved () =
  let h = Heap.create () in
  Heap.push h 2.0 2;
  Heap.push h 1.0 1;
  (match Heap.pop h with
  | Some (_, v) -> Alcotest.(check int) "min first" 1 v
  | None -> Alcotest.fail "expected element");
  Heap.push h 0.5 0;
  (match Heap.pop h with
  | Some (_, v) -> Alcotest.(check int) "new min" 0 v
  | None -> Alcotest.fail "expected element");
  match Heap.pop h with
  | Some (_, v) -> Alcotest.(check int) "remaining" 2 v
  | None -> Alcotest.fail "expected element"

let test_heap_duplicates () =
  let h = Heap.create () in
  for i = 0 to 9 do
    Heap.push h 1.0 i
  done;
  let seen = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (_, v) ->
        seen := v :: !seen;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "all ten popped" 10 (List.length !seen)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 60) (float_range (-50.0) 50.0))
    (fun keys ->
      let h = Heap.create () in
      List.iteri (fun i k -> Heap.push h k i) keys;
      let rec drain acc =
        match Heap.pop h with Some (k, _) -> drain (k :: acc) | None -> List.rev acc
      in
      let popped = drain [] in
      popped = List.sort compare keys)

let test_heap_clear () =
  let h = Heap.create () in
  Heap.push h 1.0 "a";
  Heap.push h 2.0 "b";
  Heap.clear h;
  Alcotest.(check int) "empty after clear" 0 (Heap.size h);
  Heap.push h 3.0 "c";
  match Heap.pop h with
  | Some (k, v) ->
      Alcotest.(check (float 0.0)) "key" 3.0 k;
      Alcotest.(check string) "value" "c" v
  | None -> Alcotest.fail "expected element after reuse"

(* The monomorphic int heap must pop in exactly the same order as the
   polymorphic heap (ties included) — Dijkstra's bit-compatibility across
   the workspace migration rests on this. *)
let prop_heap_int_matches_poly =
  QCheck.Test.make ~name:"Heap.Int pops identically to the polymorphic heap"
    ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 80) (float_range 0.0 4.0))
    (fun keys ->
      (* Coarse keys force plenty of ties, exercising tie-break order. *)
      let keys = List.map (fun k -> Float.round k) keys in
      let hp = Heap.create () in
      let hi = Heap.Int.create () in
      List.iteri
        (fun i k ->
          Heap.push hp k i;
          Heap.Int.push hi k i)
        keys;
      let rec drain acc =
        match (Heap.pop hp, Heap.Int.pop hi) with
        | Some a, Some b -> if a = b then drain ((a, b) :: acc) else false
        | None, None -> true
        | _ -> false
      in
      drain [])

let test_heap_int_clear () =
  let h = Heap.Int.create () in
  Heap.Int.push h 5.0 7;
  Heap.Int.clear h;
  Alcotest.(check bool) "empty after clear" true (Heap.Int.is_empty h);
  Heap.Int.push h 2.0 3;
  Alcotest.(check (float 0.0)) "min key" 2.0 (Heap.Int.min_key h);
  Alcotest.(check int) "min value" 3 (Heap.Int.min_value h);
  Heap.Int.remove_min h;
  Alcotest.(check bool) "drained" true (Heap.Int.is_empty h)

(* CSR layer: packed arrays must list each vertex's incidences in exactly
   [Graph.adj] order — traversal-order (and hence output) compatibility of
   every CSR-based kernel depends on it. *)
let prop_csr_matches_adj =
  QCheck.Test.make ~name:"CSR arrays mirror adj order" ~count:100
    QCheck.(pair small_int (int_range 4 40))
    (fun (seed, n) ->
      let rng = Rng.create (1000 + seed) in
      let g = Gen.erdos_renyi rng n 0.3 in
      let off = Graph.csr_offsets g
      and eids = Graph.csr_edge_ids g
      and dsts = Graph.csr_targets g in
      Array.length off = Graph.n g + 1
      && off.(Graph.n g) = 2 * Graph.m g
      && List.for_all
           (fun v ->
             let adj = Graph.adj g v in
             off.(v + 1) - off.(v) = Array.length adj
             && List.for_all
                  (fun i ->
                    let e, w = adj.(i) in
                    eids.(off.(v) + i) = e && dsts.(off.(v) + i) = w)
                  (List.init (Array.length adj) Fun.id))
           (List.init (Graph.n g) Fun.id))

let test_iter_adj_matches_adj () =
  let rng = Rng.create 77 in
  let g = Gen.erdos_renyi rng 12 0.4 in
  for v = 0 to Graph.n g - 1 do
    let seen = ref [] in
    Graph.iter_adj g v (fun e w -> seen := (e, w) :: !seen);
    Alcotest.(check (list (pair int int)))
      (Printf.sprintf "vertex %d" v)
      (Array.to_list (Graph.adj g v))
      (List.rev !seen)
  done

let test_dijkstra_rejects_negative_weight () =
  let g = Gen.grid 3 3 in
  (* The negative edge sits away from the source component's frontier —
     validation is per-call over all edges, not per visit. *)
  let weight e = if e = Graph.m g - 1 then -1.0 else 1.0 in
  Alcotest.check_raises "dijkstra raises"
    (Invalid_argument "Shortest.dijkstra: negative edge weight") (fun () ->
      ignore (Shortest.dijkstra g ~weight 0));
  Alcotest.check_raises "dijkstra_path raises"
    (Invalid_argument "Shortest.dijkstra: negative edge weight") (fun () ->
      ignore (Shortest.dijkstra_path g ~weight 0 1));
  Alcotest.check_raises "hop_limited raises"
    (Invalid_argument "Shortest.hop_limited_path: negative edge weight")
    (fun () -> ignore (Shortest.hop_limited_path g ~weight ~max_hops:4 0 1))

(* Extra shortest-path coverage *)

let test_dijkstra_infinite_weight_masks () =
  let g = Gen.cycle 4 in
  (* Mask edge 0 (between vertices 0 and 1): the path must go the other
     way around. *)
  let weight e = if e = 0 then infinity else 1.0 in
  match Shortest.dijkstra_path g ~weight 0 1 with
  | None -> Alcotest.fail "expected a path"
  | Some p -> Alcotest.(check int) "went the long way" 3 (Path.hops p)

let test_hop_limited_equals_dijkstra_when_loose () =
  let rng = Rng.create 55 in
  for _ = 1 to 5 do
    let g = Gen.erdos_renyi rng 15 0.3 in
    let weight e = 1.0 +. (0.1 *. float_of_int (e mod 7)) in
    let budget = Graph.n g in
    for t = 1 to Graph.n g - 1 do
      let d1 =
        match Shortest.dijkstra_path g ~weight 0 t with
        | Some p -> Path.weight weight p
        | None -> infinity
      in
      let d2 =
        match Shortest.hop_limited_path g ~weight ~max_hops:budget 0 t with
        | Some p -> Path.weight weight p
        | None -> infinity
      in
      Alcotest.(check (float 1e-9)) "same optimal weight" d1 d2
    done
  done

let test_eccentricity_bounds_diameter () =
  let g = Gen.grid 3 4 in
  let diameter = Shortest.diameter g in
  for v = 0 to Graph.n g - 1 do
    Alcotest.(check bool) "ecc <= diam" true (Shortest.eccentricity g v <= diameter)
  done;
  Alcotest.(check bool) "diam achieved" true
    (List.exists
       (fun v -> Shortest.eccentricity g v = diameter)
       (List.init (Graph.n g) Fun.id))

(* Extra max-flow coverage *)

let test_max_flow_symmetric () =
  let rng = Rng.create 77 in
  let g = Gen.erdos_renyi rng 12 0.35 in
  for _ = 1 to 10 do
    let s = Rng.int rng 12 and t = Rng.int rng 12 in
    Alcotest.(check (float 1e-6)) "flow(s,t) = flow(t,s)" (Maxflow.max_flow g s t)
      (Maxflow.max_flow g t s)
  done

let test_max_flow_capacitated_triangle () =
  let b = Graph.Builder.create 3 in
  ignore (Graph.Builder.add_edge ~cap:5.0 b 0 1);
  ignore (Graph.Builder.add_edge ~cap:2.0 b 1 2);
  ignore (Graph.Builder.add_edge ~cap:4.0 b 0 2);
  let g = Graph.Builder.build b in
  Alcotest.(check (float 1e-6)) "0->2: direct 4 + via-1 min(5,2)" 6.0
    (Maxflow.max_flow g 0 2)

let test_fat_tree_cross_pod_diversity () =
  let g = Gen.fat_tree 4 in
  (* Edge switches in pods 0 and 1. *)
  let e0 = 4 + 2 and e1 = 4 + 4 + 2 in
  let paths = Yen.k_shortest g ~weight:(fun _ -> 1.0) ~k:4 e0 e1 in
  Alcotest.(check int) "four equal-cost cross-pod routes" 4 (List.length paths);
  List.iter (fun p -> Alcotest.(check int) "all 4-hop" 4 (Path.hops p)) paths

module Tree = Sso_graph.Tree

let count_tree_edges t = List.length (Tree.edges t)

let test_bfs_tree_structure () =
  let g = Gen.grid 3 3 in
  let t = Tree.bfs_tree g 0 in
  Alcotest.(check int) "n-1 edges" 8 (count_tree_edges t);
  Alcotest.(check int) "root depth" 0 (Tree.depth g t 0);
  Alcotest.(check int) "corner depth = bfs dist" 4 (Tree.depth g t 8)

let test_bfs_tree_disconnected () =
  let b = Graph.Builder.create 4 in
  ignore (Graph.Builder.add_edge b 0 1);
  ignore (Graph.Builder.add_edge b 2 3);
  let g = Graph.Builder.build b in
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Tree.bfs_tree: graph is disconnected") (fun () ->
      ignore (Tree.bfs_tree g 0))

let test_wilson_is_spanning_tree () =
  let rng = Rng.create 3 in
  for _ = 1 to 5 do
    let g = Gen.erdos_renyi rng 20 0.25 in
    let t = Tree.wilson rng g in
    Alcotest.(check int) "n-1 edges" (Graph.n g - 1) (count_tree_edges t);
    (* Every vertex reaches the root: depth terminates and paths exist. *)
    for v = 0 to Graph.n g - 1 do
      Alcotest.(check bool) "depth finite" true (Tree.depth g t v < Graph.n g)
    done
  done

let test_wilson_uniformity_on_triangle () =
  (* A triangle has 3 spanning trees, each omitting one edge; Wilson must
     hit each about a third of the time. *)
  let g = triangle () in
  let rng = Rng.create 7 in
  let counts = Array.make 3 0 in
  let trials = 3000 in
  for _ = 1 to trials do
    let t = Tree.wilson rng g in
    let used = Tree.edges t in
    for e = 0 to 2 do
      if not (List.mem e used) then counts.(e) <- counts.(e) + 1
    done
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int trials in
      Alcotest.(check bool) "near uniform" true (Float.abs (frac -. (1.0 /. 3.0)) < 0.05))
    counts

let test_tree_path () =
  let g = Gen.grid 3 3 in
  let t = Tree.bfs_tree g 0 in
  let p = Tree.path g t 6 2 in
  Alcotest.(check bool) "simple" true (Path.is_simple g p);
  let vs = Path.vertices g p in
  Alcotest.(check int) "src" 6 vs.(0);
  Alcotest.(check int) "dst" 2 vs.(Array.length vs - 1);
  Alcotest.(check int) "self" 0 (Path.hops (Tree.path g t 4 4))

let prop_tree_path_valid =
  QCheck.Test.make ~name:"tree paths are valid simple paths" ~count:40
    QCheck.(triple small_int (int_range 0 19) (int_range 0 19))
    (fun (seed, s, t) ->
      let rng = Rng.create seed in
      let g = Gen.erdos_renyi rng 20 0.25 in
      let tree = Tree.wilson rng g in
      let p = Tree.path g tree s t in
      Path.is_simple g p
      && p.Path.src = s && p.Path.dst = t)

(* Bridges *)

module Bridges = Sso_graph.Bridges

let test_bridges_path () =
  let g = Gen.path_graph 5 in
  Alcotest.(check (list int)) "every edge" [ 0; 1; 2; 3 ] (Bridges.find g)

let test_bridges_cycle () =
  let g = Gen.cycle 6 in
  Alcotest.(check (list int)) "none" [] (Bridges.find g)

let test_bridges_parallel_edges () =
  let b = Graph.Builder.create 3 in
  ignore (Graph.Builder.add_edge b 0 1);
  ignore (Graph.Builder.add_edge b 0 1);
  ignore (Graph.Builder.add_edge b 1 2);
  let g = Graph.Builder.build b in
  Alcotest.(check (list int)) "only the single edge" [ 2 ] (Bridges.find g);
  Alcotest.(check bool) "is_bridge" true (Bridges.is_bridge g 2);
  Alcotest.(check bool) "parallel not bridge" false (Bridges.is_bridge g 0)

let test_bridges_c_graph () =
  (* In C(n,k) with k >= 2 the 2n star edges are bridges; the 2k middle
     edges are not. *)
  let n = 5 and k = 3 in
  let c = Gen.c_graph n k in
  Alcotest.(check int) "count" (2 * n) (Bridges.count c.Gen.c_graph)

let test_bridges_barbell () =
  (* Two triangles joined by one edge: exactly that edge is a bridge. *)
  let b = Graph.Builder.create 6 in
  ignore (Graph.Builder.add_edge b 0 1);
  ignore (Graph.Builder.add_edge b 1 2);
  ignore (Graph.Builder.add_edge b 0 2);
  ignore (Graph.Builder.add_edge b 3 4);
  ignore (Graph.Builder.add_edge b 4 5);
  ignore (Graph.Builder.add_edge b 3 5);
  let bridge = Graph.Builder.add_edge b 2 3 in
  let g = Graph.Builder.build b in
  Alcotest.(check (list int)) "the connector" [ bridge ] (Bridges.find g)

let prop_bridges_match_cut_of_one =
  QCheck.Test.make ~name:"an edge is a bridge iff removing it disconnects its endpoints"
    ~count:40 QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      let g = Gen.erdos_renyi rng 12 0.22 in
      let bridges = Bridges.find g in
      List.for_all
        (fun e ->
          let u, v = Graph.endpoints g e in
          let blocked e' = e' = e in
          let dist, _ =
            Shortest.dijkstra g ~weight:(fun e' -> if blocked e' then infinity else 1.0) u
          in
          let disconnected = dist.(v) = infinity in
          disconnected = List.mem e bridges)
        (List.init (Graph.m g) Fun.id))

(* Serialization *)

let test_gio_roundtrip () =
  let g = Gen.grid 3 3 in
  let g' = Gio.of_string (Gio.to_string g) in
  Alcotest.(check int) "n" (Graph.n g) (Graph.n g');
  Alcotest.(check int) "m" (Graph.m g) (Graph.m g');
  Graph.fold_edges
    (fun id u v cap () ->
      let u', v' = Graph.endpoints g' id in
      Alcotest.(check (pair int int)) "endpoints" (u, v) (u', v');
      Alcotest.(check (float 1e-9)) "cap" cap (Graph.cap g' id))
    g ()

let test_gio_caps_roundtrip () =
  let b = Graph.Builder.create 3 in
  ignore (Graph.Builder.add_edge ~cap:2.5 b 0 1);
  ignore (Graph.Builder.add_edge b 1 2);
  let g = Graph.Builder.build b in
  let g' = Gio.of_string (Gio.to_string g) in
  Alcotest.(check (float 1e-9)) "cap preserved" 2.5 (Graph.cap g' 0)

let test_gio_rejects_garbage () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Gio.of_string "hello world");
       false
     with Failure _ -> true)

let test_gio_comments () =
  let g = Gio.of_string "# a comment\nn 2\n0 1\n" in
  Alcotest.(check int) "m" 1 (Graph.m g)

let prop_gio_roundtrip =
  QCheck.Test.make
    ~name:"Gio round-trips random graphs (edges, caps, adjacency)" ~count:50
    QCheck.(pair small_int (int_range 5 30))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let g = Gen.erdos_renyi rng n 0.3 in
      let g' = Gio.of_string (Gio.to_string g) in
      (* The edge multiset (with per-edge ids, endpoints, and capacities)
         pins down multiplicities and the full adjacency structure. *)
      let per_edge =
        List.for_all
          (fun e ->
            Graph.endpoints g e = Graph.endpoints g' e
            && Graph.cap g e = Graph.cap g' e)
          (List.init (Graph.m g) Fun.id)
      in
      let adjacency =
        List.for_all
          (fun v ->
            let sorted h =
              List.sort compare (Array.to_list (Graph.adj h v))
            in
            sorted g = sorted g')
          (List.init (Graph.n g) Fun.id)
      in
      Graph.n g = Graph.n g' && Graph.m g = Graph.m g' && per_edge && adjacency)

let prop_bfs_triangle_inequality =
  QCheck.Test.make ~name:"bfs distances satisfy the triangle inequality" ~count:50
    QCheck.(small_int)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Gen.erdos_renyi rng 25 0.25 in
      let d = Shortest.all_pairs_hops g in
      let n = Graph.n g in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          for c = 0 to n - 1 do
            if d.(a).(b) <> max_int && d.(b).(c) <> max_int then
              if d.(a).(c) > d.(a).(b) + d.(b).(c) then ok := false
          done
        done
      done;
      !ok)

let prop_cut_symmetric =
  QCheck.Test.make ~name:"min cut is symmetric" ~count:50
    QCheck.(triple small_int (int_range 0 14) (int_range 0 14))
    (fun (seed, s, t) ->
      let rng = Rng.create seed in
      let g = Gen.erdos_renyi rng 15 0.3 in
      Maxflow.cut g s t = Maxflow.cut g t s)

let prop_cut_bounded_by_degree =
  QCheck.Test.make ~name:"min cut at most min endpoint degree" ~count:50
    QCheck.(triple small_int (int_range 0 14) (int_range 0 14))
    (fun (seed, s, t) ->
      QCheck.assume (s <> t);
      let rng = Rng.create (seed + 1000) in
      let g = Gen.erdos_renyi rng 15 0.3 in
      Maxflow.cut g s t <= min (Graph.degree g s) (Graph.degree g t))

let prop_yen_sorted =
  QCheck.Test.make ~name:"yen output is sorted and simple" ~count:30
    QCheck.(pair small_int (int_range 2 8))
    (fun (seed, k) ->
      let rng = Rng.create seed in
      let g = Gen.erdos_renyi rng 15 0.3 in
      let paths = Yen.k_shortest g ~weight:(fun _ -> 1.0) ~k 0 (Graph.n g - 1) in
      let ws = List.map (Path.weight (fun _ -> 1.0)) paths in
      ws = List.sort compare ws && List.for_all (Path.is_simple g) paths)

(* Path arena *)

(* A deterministic random walk of [len] hops from [s]: at each step take a
   uniformly random incident edge.  Walks (repeated vertices and edges) are
   exactly what the arena must accept. *)
let random_walk rng g s len =
  let cur = ref s in
  let edges =
    Array.init len (fun _ ->
        let row = Graph.adj g !cur in
        let e, w = row.(Rng.int rng (Array.length row)) in
        cur := w;
        e)
  in
  Path.of_edges g ~src:s ~dst:!cur edges

let test_arena_empty_and_trivial () =
  let g = triangle () in
  let a = Arena.create g in
  Alcotest.(check int) "empty length" 0 (Arena.length a);
  Alcotest.(check int) "empty bytes" 0 (Arena.memory_bytes a);
  let i = Arena.append_path a (Path.trivial 1) in
  Alcotest.(check int) "trivial handle" 0 i;
  Alcotest.(check int) "trivial hops" 0 (Arena.hops a i);
  Alcotest.(check int) "trivial src" 1 (Arena.src a i);
  Alcotest.(check int) "trivial dst" 1 (Arena.dst a i);
  Alcotest.(check (array int)) "trivial edges" [||] (Arena.edges a i);
  Alcotest.(check (array int)) "trivial vertices" [| 1 |] (Arena.vertices a i);
  let visited = ref 0 in
  Arena.iter a i (fun _ -> incr visited);
  Alcotest.(check int) "trivial iter" 0 !visited;
  Alcotest.(check bool) "trivial round-trip" true
    (Path.equal (Path.trivial 1) (Arena.to_path a i))

let test_arena_basics () =
  let g = triangle () in
  let a = Arena.create g in
  let p = Path.of_vertices g [ 0; 1; 2 ] in
  let q = Path.of_vertices g [ 0; 2 ] in
  let ip = Arena.append_path a p in
  let iq = Arena.append_path a q in
  Alcotest.(check int) "length" 2 (Arena.length a);
  Alcotest.(check int) "hops p" 2 (Arena.hops a ip);
  Alcotest.(check int) "hops q" 1 (Arena.hops a iq);
  Alcotest.(check (array int)) "edges p" p.Path.edges (Arena.edges a ip);
  Alcotest.(check (array int)) "vertices p" [| 0; 1; 2 |] (Arena.vertices a ip);
  Alcotest.(check bool) "to_path p" true (Path.equal p (Arena.to_path a ip));
  Alcotest.(check bool) "to_path q" true (Path.equal q (Arena.to_path a iq));
  Alcotest.(check bool) "memory" true (Arena.memory_bytes a > 0);
  (* Kernels agree with the boxed path. *)
  let w e = 1.0 +. float_of_int e in
  Alcotest.(check (float 1e-9)) "weight" (Path.weight w p) (Arena.weight a w ip);
  Alcotest.(check int) "fold count" 2 (Arena.fold a ip (fun acc _ -> acc + 1) 0);
  Alcotest.(check bool) "mem_edge hit" true (Arena.mem_edge a ip p.Path.edges.(0));
  Alcotest.(check bool) "for_all" true (Arena.for_all a ip (fun e -> e >= 0));
  Alcotest.(check bool) "exists" false (Arena.exists a ip (fun e -> e > 100));
  (* Canonical candidate order: shorter path first for equal endpoints. *)
  let p02 = Arena.append_path a (Path.of_vertices g [ 0; 1; 2 ]) in
  Alcotest.(check bool) "compare_within_pair" true
    (Arena.compare_within_pair a iq p02 < 0)

let test_arena_rejects_non_walk () =
  let g = Gen.grid 3 3 in
  let a = Arena.create g in
  Alcotest.check_raises "not incident"
    (Invalid_argument "Arena.append_walk: edge not incident to walk vertex") (fun () ->
      ignore (Arena.append_walk a ~src:0 ~dst:8 [| Graph.m g - 1 |]));
  Alcotest.check_raises "wrong dst"
    (Invalid_argument "Arena.append_walk: walk does not end at dst") (fun () ->
      let e0, _ = (Graph.adj g 0).(0) in
      ignore (Arena.append_walk a ~src:0 ~dst:8 [| e0 |]))

let test_arena_merge () =
  let g = Gen.grid 3 3 in
  let rng = Rng.create 5 in
  let builders =
    List.init 3 (fun _ ->
        let b = Arena.create g in
        for _ = 1 to 4 do
          ignore (Arena.append_path b (random_walk rng g (Rng.int rng 9) 5))
        done;
        b)
  in
  let merged = Arena.create g in
  let firsts = List.map (fun b -> Arena.append_all merged b) builders in
  Alcotest.(check (list int)) "merge offsets" [ 0; 4; 8 ] firsts;
  Alcotest.(check int) "merge length" 12 (Arena.length merged);
  List.iteri
    (fun k b ->
      for i = 0 to 3 do
        Alcotest.(check bool)
          (Printf.sprintf "merged path %d/%d" k i)
          true
          (Path.equal (Arena.to_path b i) (Arena.to_path merged ((k * 4) + i)))
      done)
    builders;
  (* Arenas are bound to their graph: cross-graph blits are rejected. *)
  let other = Arena.create (Gen.grid 3 3) in
  Alcotest.check_raises "graph mismatch"
    (Invalid_argument "Arena.append_slice: arenas are over different graphs")
    (fun () -> ignore (Arena.append_slice other (List.hd builders) 0))

let test_arena_unpack () =
  let g = Gen.grid 3 3 in
  let rng = Rng.create 6 in
  let a = Arena.create g in
  let paths = List.init 5 (fun i -> random_walk rng g (i mod 9) i) in
  let ids = Array.of_list (List.map (Arena.append_path a) paths) in
  let off, flat = Arena.unpack a ids in
  let off', fedges, fverts = Arena.unpack_with_vertices a ids in
  Alcotest.(check (array int)) "offsets agree" off off';
  Array.iteri
    (fun i id ->
      let h = Arena.hops a id in
      Alcotest.(check int) "unpack width" h (off.(i + 1) - off.(i));
      Alcotest.(check (array int))
        "unpack edges" (Arena.edges a id)
        (Array.sub flat off.(i) h);
      Alcotest.(check (array int))
        "unpack edges'" (Arena.edges a id)
        (Array.sub fedges off.(i) h);
      Alcotest.(check (array int))
        "unpack vertices" (Arena.vertices a id)
        (Array.sub fverts (off.(i) + i) (h + 1));
      (* suffix_edges = the boxed tail. *)
      let from_hop = h / 2 in
      Alcotest.(check (array int))
        "suffix"
        (Array.sub (Arena.edges a id) from_hop (h - from_hop))
        (Arena.suffix_edges a id ~from_hop))
    ids

let prop_arena_path_roundtrip =
  QCheck.Test.make ~name:"arena slice round-trips any walk" ~count:200
    QCheck.(triple small_int (int_range 0 24) (int_range 0 30))
    (fun (seed, s, len) ->
      let rng = Rng.create seed in
      let g = Gen.grid 5 5 in
      let p = random_walk rng g s len in
      let a = Arena.create g in
      let i = Arena.append_path a p in
      let q = Arena.to_path a i in
      let w e = 1.0 +. (float_of_int e *. 0.5) in
      Path.equal p q
      && Arena.hops a i = Array.length p.Path.edges
      && Arena.src a i = p.Path.src
      && Arena.dst a i = p.Path.dst
      && Arena.weight a w i = Path.weight w p
      && Arena.edges a i = p.Path.edges)

let prop_arena_byte_regions_contiguous =
  QCheck.Test.make ~name:"arena byte regions tile the buffer" ~count:100
    QCheck.(pair small_int (int_range 1 12))
    (fun (seed, k) ->
      let rng = Rng.create seed in
      let g = Gen.grid 4 4 in
      let a = Arena.create g in
      for _ = 1 to k do
        ignore (Arena.append_path a (random_walk rng g (Rng.int rng 16) (Rng.int rng 10)))
      done;
      let ok = ref true in
      let prev_stop = ref 0 in
      for i = 0 to Arena.length a - 1 do
        let start, stop = Arena.byte_range a i in
        if start <> !prev_stop || stop < start then ok := false;
        prev_stop := stop
      done;
      !ok)

let () =
  Alcotest.run "graph"
    [
      ( "graph",
        [
          Alcotest.test_case "builder basics" `Quick test_builder_basics;
          Alcotest.test_case "rejects self-loop" `Quick test_builder_rejects_self_loop;
          Alcotest.test_case "rejects bad cap" `Quick test_builder_rejects_bad_cap;
          Alcotest.test_case "parallel edges" `Quick test_parallel_edges;
          Alcotest.test_case "disconnected" `Quick test_disconnected;
          Alcotest.test_case "total capacity" `Quick test_total_capacity;
        ] );
      ( "path",
        [
          Alcotest.test_case "of_vertices" `Quick test_path_of_vertices;
          Alcotest.test_case "trivial" `Quick test_path_trivial;
          Alcotest.test_case "of_edges validates" `Quick test_path_of_edges_validates;
          Alcotest.test_case "simplify" `Quick test_path_simplify;
          Alcotest.test_case "simplify identity" `Quick test_path_simplify_identity;
          Alcotest.test_case "concat" `Quick test_path_concat;
          Alcotest.test_case "concat cancels" `Quick test_path_concat_cancels;
          Alcotest.test_case "reverse" `Quick test_path_reverse;
          Alcotest.test_case "weight" `Quick test_path_weight;
        ] );
      ( "shortest",
        [
          Alcotest.test_case "bfs dist" `Quick test_bfs_dist;
          Alcotest.test_case "bfs path" `Quick test_bfs_path;
          Alcotest.test_case "dijkstra weighted" `Quick test_dijkstra_weighted;
          Alcotest.test_case "dijkstra vs bfs" `Quick test_dijkstra_dist_matches_bfs;
          Alcotest.test_case "hop-limited loose" `Quick test_hop_limited_loose;
          Alcotest.test_case "hop-limited tight" `Quick test_hop_limited_tight;
          Alcotest.test_case "hop-limited infeasible" `Quick test_hop_limited_infeasible;
          Alcotest.test_case "diameter" `Quick test_diameter;
          Alcotest.test_case "all pairs hops" `Quick test_all_pairs_hops;
          Alcotest.test_case "ball vs full run" `Quick test_ball_matches_full_dijkstra;
          Alcotest.test_case "ball multi-source" `Quick test_ball_multi_source;
          Alcotest.test_case "ball negative radius" `Quick
            test_ball_negative_radius_empty;
          Alcotest.test_case "ball prune = radius" `Quick
            test_ball_prune_equals_radius;
        ] );
      ( "yen",
        [
          Alcotest.test_case "counts and order" `Quick test_yen_counts_and_order;
          Alcotest.test_case "distinct and simple" `Quick test_yen_distinct_and_simple;
          Alcotest.test_case "exhausts" `Quick test_yen_exhausts;
          Alcotest.test_case "trivial" `Quick test_yen_trivial;
        ] );
      ( "maxflow",
        [
          Alcotest.test_case "path" `Quick test_cut_path;
          Alcotest.test_case "cycle" `Quick test_cut_cycle;
          Alcotest.test_case "hypercube" `Quick test_cut_hypercube;
          Alcotest.test_case "two cliques" `Quick test_cut_two_cliques;
          Alcotest.test_case "parallel edges" `Quick test_cut_parallel_edges;
          Alcotest.test_case "self" `Quick test_cut_self;
          Alcotest.test_case "capacities" `Quick test_max_flow_capacities;
          Alcotest.test_case "min cut edges separate" `Quick test_min_cut_edges_separate;
          Alcotest.test_case "min cut edges disconnect" `Quick test_min_cut_edges_disconnect;
        ] );
      ( "matching",
        [
          Alcotest.test_case "perfect" `Quick test_matching_perfect;
          Alcotest.test_case "partial" `Quick test_matching_partial;
          Alcotest.test_case "empty" `Quick test_matching_empty;
        ] );
      ( "gen",
        [
          Alcotest.test_case "hypercube" `Quick test_gen_hypercube;
          Alcotest.test_case "grid" `Quick test_gen_grid;
          Alcotest.test_case "torus" `Quick test_gen_torus;
          Alcotest.test_case "complete" `Quick test_gen_complete;
          Alcotest.test_case "random regular" `Quick test_gen_random_regular;
          Alcotest.test_case "two cliques" `Quick test_gen_two_cliques;
          Alcotest.test_case "c_graph" `Quick test_gen_c_graph;
          Alcotest.test_case "g_graph" `Quick test_gen_g_graph;
          Alcotest.test_case "multi_path" `Quick test_gen_multi_path;
          Alcotest.test_case "abilene" `Quick test_gen_abilene;
          Alcotest.test_case "fat tree" `Quick test_gen_fat_tree;
          Alcotest.test_case "butterfly" `Quick test_gen_butterfly;
          Alcotest.test_case "de bruijn" `Quick test_gen_de_bruijn;
          Alcotest.test_case "b4" `Quick test_gen_b4;
          Alcotest.test_case "unit caps" `Quick test_gen_with_unit_caps;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "interleaved" `Quick test_heap_interleaved;
          Alcotest.test_case "duplicates" `Quick test_heap_duplicates;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          Alcotest.test_case "int clear" `Quick test_heap_int_clear;
        ] );
      ( "csr",
        [
          Alcotest.test_case "iter_adj matches adj" `Quick test_iter_adj_matches_adj;
          Alcotest.test_case "dijkstra rejects negative weight" `Quick
            test_dijkstra_rejects_negative_weight;
        ] );
      ( "shortest extra",
        [
          Alcotest.test_case "infinite weight masks" `Quick test_dijkstra_infinite_weight_masks;
          Alcotest.test_case "hop-limited = dijkstra when loose" `Quick
            test_hop_limited_equals_dijkstra_when_loose;
          Alcotest.test_case "eccentricity vs diameter" `Quick test_eccentricity_bounds_diameter;
        ] );
      ( "maxflow extra",
        [
          Alcotest.test_case "symmetric" `Quick test_max_flow_symmetric;
          Alcotest.test_case "capacitated triangle" `Quick test_max_flow_capacitated_triangle;
          Alcotest.test_case "fat tree diversity" `Quick test_fat_tree_cross_pod_diversity;
        ] );
      ( "tree",
        [
          Alcotest.test_case "bfs tree" `Quick test_bfs_tree_structure;
          Alcotest.test_case "bfs disconnected" `Quick test_bfs_tree_disconnected;
          Alcotest.test_case "wilson spanning" `Quick test_wilson_is_spanning_tree;
          Alcotest.test_case "wilson uniform" `Slow test_wilson_uniformity_on_triangle;
          Alcotest.test_case "tree path" `Quick test_tree_path;
        ] );
      ( "bridges",
        [
          Alcotest.test_case "path" `Quick test_bridges_path;
          Alcotest.test_case "cycle" `Quick test_bridges_cycle;
          Alcotest.test_case "parallel" `Quick test_bridges_parallel_edges;
          Alcotest.test_case "c_graph" `Quick test_bridges_c_graph;
          Alcotest.test_case "barbell" `Quick test_bridges_barbell;
        ] );
      ( "gio",
        [
          Alcotest.test_case "roundtrip" `Quick test_gio_roundtrip;
          Alcotest.test_case "caps roundtrip" `Quick test_gio_caps_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_gio_rejects_garbage;
          Alcotest.test_case "comments" `Quick test_gio_comments;
        ] );
      ( "arena",
        [
          Alcotest.test_case "empty and trivial" `Quick test_arena_empty_and_trivial;
          Alcotest.test_case "basics" `Quick test_arena_basics;
          Alcotest.test_case "rejects non-walk" `Quick test_arena_rejects_non_walk;
          Alcotest.test_case "merge" `Quick test_arena_merge;
          Alcotest.test_case "unpack" `Quick test_arena_unpack;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_matching_valid;
            prop_arena_path_roundtrip;
            prop_arena_byte_regions_contiguous;
            prop_gio_roundtrip;
            prop_bfs_triangle_inequality;
            prop_cut_symmetric;
            prop_cut_bounded_by_degree;
            prop_yen_sorted;
            prop_tree_path_valid;
            prop_heap_sorts;
            prop_heap_int_matches_poly;
            prop_csr_matches_adj;
            prop_bridges_match_cut_of_one;
          ] );
    ]
