#!/bin/sh
# CI entry point: build everything, run the test suite, then smoke-test the
# parallel engine by running the E3 adversary experiment on 2 worker
# domains (its output is deterministic for any job count), the
# artifact cache by running E5 cold/warm in a temporary store
# (byte-identical output, at least one recorded hit), and the kernel
# micro-benchmarks by validating their JSON schema.
set -eux

dune build
dune runtest
dune exec bench/main.exe -- --experiment E3 --no-timing --jobs 2
./cache_smoke.sh
./kernels_smoke.sh
