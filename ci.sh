#!/bin/sh
# CI entry point: build everything, run the test suite, then smoke-test the
# parallel engine by running the E3 adversary experiment on 2 worker
# domains (its output is deterministic for any job count), the
# artifact cache by running E5 cold/warm in a temporary store
# (byte-identical output, at least one recorded hit), the kernel
# micro-benchmarks by validating their JSON schema, the tracing
# subsystem by recording a kernel trace at two job counts (identical
# event sequences) and running the `sso trace` analyzers over it, and
# the fault-injection subsystem via `sso faults` (jobs-invariant sweeps,
# a dropped-free mid-flight SRLG failover, cached warm sweeps), the
# arena path storage at scale (--scale on a 50k-switch fat-tree,
# warm-cache byte-identical to cold, bytes/pair reduction gate), the
# routing service via `sso serve` (a 10k-update churn stream replayed
# byte-identically at --jobs 1 and 4, stream exit codes 10/11 honored),
# the telemetry layer (a --metrics-out Prometheus exposition scrape
# validated line by line, the --slo-p99-ms burn exit, and jobs-invariant
# `sso trace flame` folded stacks), and the crash-safety layer via the
# chaos harness (kill-and-resume digest-identical, bit-flipped
# checkpoints and streams always exit 11, faulted replays
# jobs-invariant).
#
# Fails fast: the first failing step stops the run, and the last stderr
# line names the step that broke.
set -eu

run_step() {
  echo "+ $*" >&2
  "$@" || {
    rc=$?
    echo "ci.sh: FAILED in $* (exit $rc)" >&2
    exit "$rc"
  }
}

run_step dune build
run_step dune runtest
run_step dune exec bench/main.exe -- --experiment E3 --no-timing --jobs 2
run_step ./cache_smoke.sh
run_step ./kernels_smoke.sh
run_step ./trace_smoke.sh
run_step ./faults_smoke.sh
run_step ./scale_smoke.sh
run_step ./serve_smoke.sh
run_step ./obs_smoke.sh
run_step ./chaos_smoke.sh
