(* Experiment harness: regenerates every quantitative claim of the paper
   (the per-theorem experiments E1–E9 indexed in DESIGN.md/EXPERIMENTS.md)
   and provides a Bechamel micro-benchmark per experiment family.

   Usage:
     dune exec bench/main.exe                 # all experiments + timings
     dune exec bench/main.exe -- --experiment E3
     dune exec bench/main.exe -- --list
     dune exec bench/main.exe -- --no-timing  # experiment tables only
     dune exec bench/main.exe -- --timing     # Bechamel suite only
     dune exec bench/main.exe -- --big        # widen instance ranges
     dune exec bench/main.exe -- --jobs 4     # worker domains (default: cores)
     dune exec bench/main.exe -- --seed 7     # master seed for every experiment
     dune exec bench/main.exe -- --metrics    # dump counters/spans at exit
     dune exec bench/main.exe -- --cache      # memoize constructions on disk
     dune exec bench/main.exe -- --cache-dir D # cache in D (implies --cache)
     dune exec bench/main.exe -- --no-cache   # force the cache off
     dune exec bench/main.exe -- --json F     # write wall times / scalars to F
     dune exec bench/main.exe -- --kernels    # shortest-path/MWU kernel micro-benches
     dune exec bench/main.exe -- --faults     # fault-injection sweeps / timeline / worst-k
     dune exec bench/main.exe -- --scale      # arena storage at fat-tree scale
     dune exec bench/main.exe -- --scale-k 200 --scale-pairs 512  # smaller instance
     dune exec bench/main.exe -- --serve      # routing service: warm vs cold re-solve *)

module Rng = Sso_prng.Rng
module Graph = Sso_graph.Graph
module Gen = Sso_graph.Gen
module Maxflow = Sso_graph.Maxflow
module Demand = Sso_demand.Demand
module Routing = Sso_flow.Routing
module Min_congestion = Sso_flow.Min_congestion
module Rounding = Sso_flow.Rounding
module Oblivious = Sso_oblivious.Oblivious
module Valiant = Sso_oblivious.Valiant
module Deterministic = Sso_oblivious.Deterministic
module Ksp = Sso_oblivious.Ksp
module Frt = Sso_oblivious.Frt
module Racke = Sso_oblivious.Racke
module Sampler = Sso_core.Sampler
module Path_system = Sso_core.Path_system
module Semi_oblivious = Sso_core.Semi_oblivious
module Integral = Sso_core.Integral
module Process = Sso_core.Process
module Completion = Sso_core.Completion
module Lower_bound = Sso_core.Lower_bound
module Stats = Sso_stats.Stats
module Pool = Sso_engine.Pool
module Metrics = Sso_engine.Metrics
module Obs = Sso_obs.Obs
module Trace = Sso_obs.Trace
module Codec = Sso_artifact.Codec
module Store = Sso_artifact.Store
module Memo = Sso_artifact.Memo

(* --seed S reseeds every experiment: each formerly hard-coded seed
   constant [k] becomes the [k]-th child of the master seed, so tables
   stay reproducible per seed without sharing streams across sites. *)
let master_seed = ref 0
let seeded k = Sso_prng.Rng.split_at (Sso_prng.Rng.create !master_seed) k

(* --cache/--cache-dir back the expensive constructions with the artifact
   store; off by default so plain runs leave no files behind.  The cached
   objects round-trip bit-exactly, so warm output is byte-identical to
   cold output for any seed and job count. *)
let store : Store.t option ref = ref None
let racke_routing rng g = Memo.racke ?store:!store rng g

(* --json: named result scalars accumulated by the experiments. *)
let scalars : (string * float) list ref = ref []
let scalar name v = scalars := !scalars @ [ (name, v) ]

let header title =
  Printf.printf "\n=== %s ===\n" title

let log2_ceil n =
  let rec go acc v = if v >= n then acc else go (acc + 1) (v * 2) in
  go 0 1

(* Solver iteration counts, balanced for harness runtime. *)
let stage4 = Semi_oblivious.Mwu 200
let opt_solver = Semi_oblivious.Mwu 150

(* --big widens the instance ranges (larger hypercubes/grids); default
   keeps the full harness under ~20 s. *)
let big_scale = ref false

let ratio_on g system demand =
  let cong = Semi_oblivious.congestion ~solver:stage4 g system demand in
  let opt = Semi_oblivious.opt ~solver:opt_solver g demand in
  (cong, opt, cong /. opt)

(* ------------------------------------------------------------------ *)
(* E1 — Theorem 2.3: Θ(log n)-sparse samples are polylog-competitive on
   {0,1}-demands, across topologies and sizes. *)

let e1 () =
  header "E1  Theorem 2.3: log-sparsity, polylog competitiveness";
  Printf.printf "%-18s %5s %5s %3s | %10s %10s %10s\n" "graph" "n" "m" "a"
    "median" "max" "oblivious";
  let trials = 3 in
  let run name g base =
    let n = Graph.n g in
    let alpha = log2_ceil n in
    let rng = seeded 11 in
    let system = Sampler.alpha_sample (Rng.split rng) base ~alpha in
    let trial_rng = Rng.split rng in
    let results =
      Pool.parallel_init trials (fun i ->
          let d = Demand.random_permutation (Rng.split_at trial_rng i) n in
          let _, opt, r = ratio_on g system d in
          (r, Oblivious.congestion base d /. opt))
    in
    let arr = Array.map fst results and obl = Array.map snd results in
    let med = Stats.median arr in
    scalar (Printf.sprintf "E1.%s.median" name) med;
    Printf.printf "%-18s %5d %5d %3d | %10.2f %10.2f %10.2f\n" name n
      (Graph.m g) alpha med (Stats.max_value arr)
      (Stats.max_value obl)
  in
  List.iter
    (fun d -> run (Printf.sprintf "hypercube-%d" d) (Gen.hypercube d)
        (Valiant.routing (Gen.hypercube d)))
    (if !big_scale then [ 4; 5; 6; 7; 8 ] else [ 4; 5; 6; 7 ]);
  let rng = seeded 5 in
  let expander_n = if !big_scale then 64 else 32 in
  let expander = Gen.random_regular (Rng.split rng) expander_n 4 in
  run (Printf.sprintf "expander-%d" expander_n) expander
    (racke_routing (Rng.split rng) expander);
  let side = if !big_scale then 8 else 6 in
  let grid = Gen.grid side side in
  run (Printf.sprintf "grid-%dx%d" side side) grid (racke_routing (Rng.split rng) grid);
  Printf.printf
    "shape: ratios stay O(polylog) as n grows (16x range); the full\n";
  Printf.printf "oblivious routing is never much better than the sparse sample.\n"

(* ------------------------------------------------------------------ *)
(* E2 — Theorem 2.5: every additional sampled path improves the
   competitiveness polynomially (the power of a few random choices). *)

let e2 () =
  header "E2  Theorem 2.5: competitiveness improves exponentially with alpha";
  let dim = 6 in
  let g = Gen.hypercube dim in
  let base = Valiant.routing g in
  let rng = seeded 17 in
  let demands =
    Demand.bit_reversal dim :: Demand.transpose dim
    :: List.init 3 (fun _ -> Demand.random_permutation (Rng.split rng) (Graph.n g))
  in
  let opts = List.map (fun d -> Semi_oblivious.opt ~solver:opt_solver g d) demands in
  Printf.printf "hypercube-%d, worst over bit-reversal/transpose/3 random perms\n" dim;
  Printf.printf "%5s | %12s %12s\n" "alpha" "worst cong" "worst ratio";
  List.iter
    (fun alpha ->
      let system = Sampler.alpha_sample (seeded (1000 + alpha)) base ~alpha in
      let worst_cong = ref 0.0 and worst_ratio = ref 0.0 in
      List.iter2
        (fun d opt ->
          let c = Semi_oblivious.congestion ~solver:stage4 g system d in
          worst_cong := Float.max !worst_cong c;
          worst_ratio := Float.max !worst_ratio (c /. opt))
        demands opts;
      Printf.printf "%5d | %12.2f %12.2f\n" alpha !worst_cong !worst_ratio)
    [ 1; 2; 3; 4; 6; 8 ];
  Printf.printf "shape: steep improvement from alpha=1 to 2-4, then flattening\n";
  Printf.printf "near the optimum -- n^O(1/alpha) as claimed.\n"

(* ------------------------------------------------------------------ *)
(* E3 — Figure 1 + Lemmas 8.1/8.2/Cor 8.3: the lower-bound gadget. *)

let e3 () =
  header "E3  Figure 1 / Section 8: lower bound on C(n,k)";
  Printf.printf "fixed gadget C(12,6), adversary vs alpha-samples of KSP-12:\n";
  Printf.printf "%5s | %8s %10s %10s %10s\n" "alpha" "|S'|" "certified"
    "measured" "k/alpha";
  let n = 12 and k = 6 in
  let c = Gen.c_graph n k in
  Array.iter print_string
  @@ Pool.parallel_map
       (fun alpha ->
         let rng = seeded (300 + alpha) in
         let base = Ksp.routing ~k:(2 * k) c.Gen.c_graph in
         let system = Sampler.alpha_sample rng base ~alpha in
         let attack = Lower_bound.attack c system in
         let measured =
           Semi_oblivious.congestion ~solver:Semi_oblivious.Lp c.Gen.c_graph system
             attack.Lower_bound.demand
         in
         Printf.sprintf "%5d | %8d %10.2f %10.2f %10.2f\n" alpha
           (List.length attack.Lower_bound.bottleneck)
           attack.Lower_bound.predicted_congestion measured
           (float_of_int k /. float_of_int alpha))
       [| 1; 2; 3; 4 |];
  Printf.printf "\nscaling n with k = floor(sqrt n), alpha = 1 (Cor 8.3 regime):\n";
  Printf.printf "%5s %5s | %10s %10s\n" "n" "k" "certified" "measured";
  Array.iter print_string
  @@ Pool.parallel_map
       (fun n ->
         let k = int_of_float (Float.sqrt (float_of_int n)) in
         let c = Gen.c_graph n k in
         let rng = seeded (400 + n) in
         let base = Ksp.routing ~k:(2 * k) c.Gen.c_graph in
         let system = Sampler.alpha_sample rng base ~alpha:1 in
         let attack = Lower_bound.attack c system in
         let measured =
           Semi_oblivious.congestion ~solver:Semi_oblivious.Lp c.Gen.c_graph system
             attack.Lower_bound.demand
         in
         Printf.sprintf "%5d %5d | %10.2f %10.2f\n" n k
           attack.Lower_bound.predicted_congestion measured)
       [| 9; 16; 25; 36 |];
  Printf.printf "\ncomposite family graph G(16) (Lemma 8.2): attack the copy\n";
  Printf.printf "matching each alpha inside the same fixed graph:\n";
  Printf.printf "%5s | %10s %10s\n" "alpha" "certified" "measured";
  let gg = Gen.g_graph 16 in
  Array.iter print_string
  @@ Pool.parallel_map
       (fun alpha ->
         let rng = seeded (450 + alpha) in
         let base = Ksp.routing ~k:8 gg.Gen.g_graph in
         let system = Sampler.alpha_sample rng base ~alpha in
         let attack = Lower_bound.attack_in_family gg ~alpha system in
         let measured =
           Semi_oblivious.congestion ~solver:Semi_oblivious.Lp gg.Gen.g_graph system
             attack.Lower_bound.demand
         in
         Printf.sprintf "%5d | %10.2f %10.2f\n" alpha
           attack.Lower_bound.predicted_congestion measured)
       [| 1; 2 |];
  Printf.printf "shape: certified = measured >= k/alpha; optimum is always 1.\n"

(* ------------------------------------------------------------------ *)
(* E4 — The KKT91 barrier and its bypass (deterministic routing). *)

let e4 () =
  header "E4  KKT91: deterministic e-cube vs Valiant vs sparse semi-oblivious";
  Printf.printf "%-12s | %10s %10s %14s %14s\n" "graph" "e-cube" "Valiant"
    "semi (a=logn)" "sqrt(n)";
  List.iter
    (fun dim ->
      let g = Gen.hypercube dim in
      let d = Demand.bit_reversal dim in
      let ecube = Oblivious.congestion (Deterministic.ecube g) d in
      let valiant_routing = Valiant.routing g in
      let valiant = Oblivious.congestion valiant_routing d in
      let alpha = dim in
      let system = Sampler.alpha_sample (seeded 77) valiant_routing ~alpha in
      let semi = Semi_oblivious.congestion ~solver:stage4 g system d in
      Printf.printf "%-12s | %10.2f %10.2f %14.2f %14.1f\n"
        (Printf.sprintf "hypercube-%d" dim)
        ecube valiant semi
        (Float.sqrt (float_of_int (Graph.n g))))
    [ 4; 6; 8 ];
  Printf.printf
    "shape: e-cube grows like sqrt(n) (the KKT91 lower bound); the\n";
  Printf.printf
    "deterministically-selected log n sampled paths stay near-optimal.\n"

(* ------------------------------------------------------------------ *)
(* E5 — SMORE (KYY+18): alpha = 4 is a sweet spot on WAN + gravity. *)

let e5 () =
  header "E5  SMORE: traffic engineering on Abilene with gravity matrices";
  let rng = seeded 7 in
  let g, _ = Gen.abilene () in
  let racke_rng = Rng.split rng in
  (* Taken before the construction consumes the generator: names the base
     routing inside α-sample cache keys. *)
  let racke_key = Codec.hex_of_key (Store.key (Memo.racke_recipe ~rng:racke_rng g)) in
  let racke = racke_routing racke_rng g in
  let ksp4 = Ksp.routing ~k:4 g in
  let matrices =
    List.init 5 (fun _ -> Demand.gravity (Rng.split rng) ~n:(Graph.n g) ~total:60.0)
  in
  let pairs = List.sort_uniq compare (List.concat_map Demand.support matrices) in
  let opts = List.map (fun d -> Semi_oblivious.opt ~solver:opt_solver g d) matrices in
  Printf.printf "%-26s %12s %12s\n" "scheme" "mean ratio" "max ratio";
  let report name ratios =
    let arr = Array.of_list ratios in
    let mean = Stats.mean arr and worst = Stats.max_value arr in
    scalar (Printf.sprintf "E5.%s.mean" name) mean;
    scalar (Printf.sprintf "E5.%s.max" name) worst;
    Printf.printf "%-26s %12.3f %12.3f\n" name mean worst
  in
  report "KSP-4 (traditional TE)"
    (List.map2 (fun d opt -> Oblivious.congestion ksp4 d /. opt) matrices opts);
  report "oblivious (Racke full)"
    (List.map2 (fun d opt -> Oblivious.congestion racke d /. opt) matrices opts);
  List.iter
    (fun alpha ->
      let system =
        Memo.alpha_sample ?store:!store ~base_key:racke_key
          (seeded (500 + alpha))
          racke ~alpha ~pairs
      in
      report
        (Printf.sprintf "semi-oblivious a=%d" alpha)
        (List.map2
           (fun d opt -> Semi_oblivious.congestion ~solver:stage4 g system d /. opt)
           matrices opts))
    [ 1; 2; 4; 8 ];
  Printf.printf "shape: a=4 already tracks the optimum (SMORE's empirical pick);\n";
  Printf.printf "a=1 pays for obliviousness, KSP ignores capacity structure.\n"

(* ------------------------------------------------------------------ *)
(* E6 — Section 2.1: why (alpha + cut) sparsity is necessary for
   arbitrary demands (the two-clique example), Lemma 2.7 regime. *)

let e6 () =
  header "E6  two cliques: alpha-samples vs (alpha+cut)-samples on heavy pairs";
  let n = 8 in
  let g = Gen.two_cliques n in
  let s = 0 and t = (2 * n) - 1 in
  let d = Demand.single_pair s t (float_of_int n) in
  let rng = seeded 23 in
  let base = racke_routing (Rng.split rng) g in
  let opt = Min_congestion.lp_unrestricted g d in
  Printf.printf "graph: two %d-cliques + %d bridges; demand: %d units %d->%d\n" n n n s t;
  Printf.printf "cut_G(s,t) = %d, offline optimum = %.3f\n\n" (Maxflow.cut g s t) opt;
  Printf.printf "%-24s %10s %12s %10s\n" "system" "paths" "congestion" "ratio";
  List.iter
    (fun alpha ->
      let plain = Sampler.alpha_sample (Rng.split rng) base ~alpha in
      let with_cut = Sampler.alpha_cut_sample (Rng.split rng) base ~alpha in
      let report name system =
        let cong = Semi_oblivious.congestion ~solver:Semi_oblivious.Lp g system d in
        Printf.printf "%-24s %10d %12.3f %10.2f\n" name
          (List.length (Path_system.paths system s t))
          cong (cong /. opt)
      in
      report (Printf.sprintf "alpha-sample (a=%d)" alpha) plain;
      report (Printf.sprintf "(a+cut)-sample (a=%d)" alpha) with_cut)
    [ 1; 3 ];
  Printf.printf "shape: without the cut term the single heavy pair is stuck on\n";
  Printf.printf "<= alpha paths (congestion >= n/alpha x opt); with it, near 1.\n"

(* ------------------------------------------------------------------ *)
(* E7 — Section 7 / Lemma 2.8: completion time needs hop awareness. *)

let e7 () =
  header "E7  completion time: congestion-only vs hop-aware Stage 4";
  let detours = 6 and detour_len = 12 in
  let g = Gen.multi_path (1 :: List.init detours (fun _ -> detour_len)) in
  Printf.printf "network: 1 direct link + %d disjoint %d-hop detours\n" detours detour_len;
  let rng = seeded 11 in
  let system = Completion.ladder_system rng g ~alpha:3 in
  Printf.printf "%8s | %21s | %21s\n" "packets" "cong-only  (c, d, c+d)"
    "hop-aware  (c, d, c+d)";
  List.iter
    (fun packets ->
      let d = Demand.single_pair 0 1 (float_of_int packets) in
      let r, c_only = Semi_oblivious.route ~solver:stage4 g system d in
      let d_only = Routing.dilation r d in
      let _, c_aware, d_aware = Completion.route ~solver:stage4 g system d in
      Printf.printf "%8d | %6.2f %4d %8.2f | %6.2f %4d %8.2f\n" packets c_only
        d_only
        (c_only +. float_of_int d_only)
        c_aware d_aware
        (c_aware +. float_of_int d_aware))
    [ 1; 2; 4; 8; 16; 32 ];
  Printf.printf "shape: congestion-only pays the %d-hop dilation even for one\n" detour_len;
  Printf.printf "packet; hop-aware crosses over only when demand warrants it.\n"

(* ------------------------------------------------------------------ *)
(* E8 — Lemma 6.3 / Corollary 6.4: integral rounding quality. *)

let e8 () =
  header "E8  rounding: cong_Z <= 2 cong_R + 3 ln m (Lemma 6.3)";
  let rng = seeded 31 in
  Printf.printf "%8s %6s | %10s %10s %10s %8s\n" "instance" "m" "frac"
    "integral" "bound" "ok";
  let rows =
    Pool.parallel_init 8 (fun idx ->
        let i = idx + 1 in
        let trial = Rng.split_at rng i in
        let g = Gen.erdos_renyi (Rng.split trial) 14 0.3 in
        let d = Demand.random_pairs (Rng.split trial) ~n:14 ~pairs:6 in
        let base = Ksp.routing ~k:3 g in
        let system = Sampler.alpha_sample (Rng.split trial) base ~alpha:3 in
        let frac = Semi_oblivious.congestion ~solver:Semi_oblivious.Lp g system d in
        let _, integral = Integral.congestion_upper ~solver:Semi_oblivious.Lp ~tries:20 (Rng.split trial) g system d in
        let bound = (2.0 *. frac) +. (3.0 *. Float.log (float_of_int (Graph.m g))) in
        let row =
          Printf.sprintf "%8d %6d | %10.3f %10.3f %10.3f %8b\n" i (Graph.m g)
            frac integral bound
            (integral <= bound +. 1e-9)
        in
        (row, integral -. frac))
  in
  Array.iter (fun (row, _) -> print_string row) rows;
  let worst_gap = Array.fold_left (fun acc (_, gap) -> Float.max acc gap) 0.0 rows in
  Printf.printf "worst additive integrality gap observed: %.3f\n" worst_gap;
  Printf.printf "shape: every instance satisfies the Lemma 6.3 bound, with the\n";
  Printf.printf "local search keeping the real gap far below it.\n"

(* ------------------------------------------------------------------ *)
(* E9 — Section 1.1: oblivious routings need large support; semi-oblivious
   reaches the same quality at O(log n) paths. *)

let e9 () =
  header "E9  sparsity vs competitiveness: oblivious support is the bottleneck";
  let dim = 6 in
  let g = Gen.hypercube dim in
  let valiant = Valiant.routing g in
  let rng = seeded 13 in
  let demands =
    List.init 3 (fun _ -> Demand.random_permutation (Rng.split rng) (Graph.n g))
  in
  let opts = List.map (fun d -> Semi_oblivious.opt ~solver:opt_solver g d) demands in
  Printf.printf "hypercube-%d, worst ratio over 3 random permutations\n" dim;
  Printf.printf "%-30s %10s %12s\n" "scheme" "paths/pair" "worst ratio";
  let report name sparsity ratios =
    Printf.printf "%-30s %10d %12.2f\n" name sparsity
      (List.fold_left Float.max 0.0 ratios)
  in
  let ecube = Deterministic.ecube g in
  report "e-cube (oblivious, 1 path)" 1
    (List.map2 (fun d opt -> Oblivious.congestion ecube d /. opt) demands opts);
  List.iter
    (fun alpha ->
      let system = Sampler.alpha_sample (seeded (900 + alpha)) valiant ~alpha in
      report
        (Printf.sprintf "semi-oblivious sample a=%d" alpha)
        alpha
        (List.map2
           (fun d opt -> Semi_oblivious.congestion ~solver:stage4 g system d /. opt)
           demands opts))
    [ 2; 4; 6 ];
  let sample_pairs = List.concat_map Demand.support demands in
  report "Valiant (oblivious, full)"
    (Oblivious.support_sparsity valiant sample_pairs)
    (List.map2 (fun d opt -> Oblivious.congestion valiant d /. opt) demands opts);
  Printf.printf "shape: the oblivious routing needs Theta(n) support for its\n";
  Printf.printf "quality; a few adaptive paths already match it.\n"

(* ------------------------------------------------------------------ *)
(* E10 — grounding the objective: simulated store-and-forward delivery
   time tracks congestion + dilation [LMR94], which is why Section 7's
   objective is the right proxy for completion time. *)

let e10 () =
  header "E10 packet simulation: makespan tracks congestion + dilation";
  let module Simulator = Sso_sim.Simulator in
  let dim = 6 in
  let g = Gen.hypercube dim in
  let valiant = Valiant.routing g in
  let rng = seeded 19 in
  let d = Demand.bit_reversal dim in
  Printf.printf "hypercube-%d, bit-reversal permutation (%d packets), FIFO vs random-rank\n"
    dim (Demand.support_size d);
  Printf.printf "%-26s | %5s %5s %7s | %9s %9s\n" "assignment" "cong" "dil"
    "c+d" "fifo" "rand-rank";
  let report name (assignment : Rounding.assignment) =
    let loads = Array.make (Graph.m g) 0 in
    let dil = ref 0 in
    Array.iter
      (fun (_, paths) ->
        Array.iter
          (fun (p : Sso_graph.Path.t) ->
            dil := max !dil (Sso_graph.Path.hops p);
            Array.iter (fun e -> loads.(e) <- loads.(e) + 1) p.Sso_graph.Path.edges)
          paths)
      assignment;
    let cong = Array.fold_left max 0 loads in
    let fifo =
      Simulator.completed_exn (Simulator.run ~discipline:Simulator.Fifo g assignment)
    in
    let rnd =
      Simulator.completed_exn
        (Simulator.run ~discipline:(Simulator.Random_rank (seeded 91)) g assignment)
    in
    Printf.printf "%-26s | %5d %5d %7d | %9d %9d\n" name cong !dil (cong + !dil)
      fifo.Simulator.makespan rnd.Simulator.makespan
  in
  (* Deterministic e-cube: one fixed path per packet. *)
  let ecube = Deterministic.ecube g in
  let ecube_assignment : Rounding.assignment =
    Array.of_list
      (List.map
         (fun (s, t) ->
           ((s, t), [| snd (List.hd (Oblivious.distribution ecube s t)) |]))
         (Demand.support d))
  in
  report "e-cube (deterministic)" ecube_assignment;
  (* Integral semi-oblivious from an alpha = log n sample. *)
  let system = Sampler.alpha_sample (Rng.split rng) valiant ~alpha:dim in
  let semi_assignment, _ =
    Integral.congestion_upper ~solver:stage4 (Rng.split rng) g system d
  in
  report "semi-oblivious (a=log n)" semi_assignment;
  Printf.printf
    "shape: measured makespan stays within a small factor of c+d and far\n";
  Printf.printf
    "below c*d; lower congestion translates directly into delivery time.\n"

(* ------------------------------------------------------------------ *)
(* E11 — ablation: Theorem 5.3 is relative to the base routing R, so the
   "sample from any COMPETITIVE oblivious routing" hypothesis is
   load-bearing: α-samples of a poor base stay poor. *)

let e11 () =
  header "E11 ablation: quality of the base oblivious routing matters";
  let module Trees = Sso_oblivious.Trees in
  let module Tree = Sso_graph.Tree in
  let g = Gen.torus 4 4 in
  let rng = seeded 37 in
  let alpha = 4 in
  let demands =
    Demand.ring_shift ~n:16 ~shift:5
    :: List.init 3 (fun _ -> Demand.random_permutation (Rng.split rng) 16)
  in
  let opts = List.map (fun d -> Semi_oblivious.opt ~solver:opt_solver g d) demands in
  Printf.printf "4x4 torus, alpha = %d samples, worst ratio over 4 permutations\n" alpha;
  Printf.printf "%-34s %12s\n" "base oblivious routing R" "worst ratio";
  let bases =
    [
      ("single BFS tree (worst base)", Trees.single g (Tree.bfs_tree g 0));
      ("8 random spanning trees", Trees.uniform (Rng.split rng) ~count:8 g);
      ("KSP-4 spread", Ksp.routing ~k:4 g);
      ("Racke (MWU over FRT)", racke_routing (Rng.split rng) g);
    ]
  in
  List.iter
    (fun (name, base) ->
      let system = Sampler.alpha_sample (Rng.split rng) base ~alpha in
      let worst =
        List.fold_left2
          (fun acc d opt ->
            Float.max acc (Semi_oblivious.congestion ~solver:stage4 g system d /. opt))
          0.0 demands opts
      in
      Printf.printf "%-34s %12.2f\n" name worst)
    bases;
  Printf.printf "shape: samples inherit the base's competitiveness -- a single\n";
  Printf.printf "tree cannot be rescued by Stage-4 adaptivity, Racke can.\n"

(* ------------------------------------------------------------------ *)
(* E12 — solver cross-validation: the exact LP, the MWU game solver and
   Garg–Könemann agree on Stage-4 congestion; cost scales differently. *)

let e12 () =
  header "E12 Stage-4 engines: exact LP vs MWU vs Garg-Konemann";
  let module Concurrent_flow = Sso_flow.Concurrent_flow in
  let timed f =
    let t0 = Sys.time () in
    let v = f () in
    (v, Sys.time () -. t0)
  in
  Printf.printf "%8s %6s %6s | %18s %18s %18s\n" "n" "pairs" "cands"
    "LP (cong, s)" "MWU-400 (cong, s)" "GK-0.05 (cong, s)";
  List.iter
    (fun (n, pairs) ->
      let rng = seeded (800 + n) in
      let g = Gen.erdos_renyi (Rng.split rng) n 0.3 in
      let d = Demand.random_pairs (Rng.split rng) ~n ~pairs in
      let base = Ksp.routing ~k:4 g in
      let system = Sampler.alpha_sample (Rng.split rng) base ~alpha:4 in
      let cands = Path_system.to_candidates system (Demand.support d) in
      let (_, lp), lp_t = timed (fun () -> Min_congestion.lp_on_paths g cands d) in
      let (_, mwu), mwu_t =
        timed (fun () -> Min_congestion.mwu_on_paths ~iters:400 g cands d)
      in
      let (_, gk), gk_t =
        timed (fun () -> Concurrent_flow.on_paths ~epsilon:0.05 g cands d)
      in
      Printf.printf "%8d %6d %6d | %10.3f %7.3f %10.3f %7.3f %10.3f %7.3f\n" n
        pairs
        (Path_system.sparsity_on system (Demand.support d))
        lp lp_t mwu mwu_t gk gk_t)
    [ (12, 5); (20, 10); (30, 20) ];
  Printf.printf "shape: all three agree within the approximation tolerance;\n";
  Printf.printf "the iterative engines scale past where the dense LP stops.\n"

(* ------------------------------------------------------------------ *)
(* E13 — grids, the HKL07 territory: [HKL07] proved even polynomially
   sparse semi-oblivious routing on n x n grids cannot beat
   Ω(log n / log log n); our samples should show slow (log-like) ratio
   growth on the transpose workload — above 1, far below deterministic
   XY routing. *)

let e13 () =
  header "E13 grids (HKL07): transpose demand, XY vs sparse samples";
  Printf.printf "%-10s %5s | %10s %14s %14s\n" "grid" "n" "XY det"
    "semi a=4" "semi a=8";
  List.iter
    (fun side ->
      let g = Gen.grid side side in
      let d =
        Demand.of_list
          (List.concat_map
             (fun r ->
               List.filter_map
                 (fun c ->
                   if r = c then None
                   else Some ((r * side) + c, (c * side) + r, 1.0))
                 (List.init side Fun.id))
             (List.init side Fun.id))
      in
      let opt = Semi_oblivious.opt ~solver:opt_solver g d in
      let xy = Oblivious.congestion (Deterministic.xy_grid ~cols:side g) d /. opt in
      let rng = seeded (600 + side) in
      let base = racke_routing (Rng.split rng) g in
      let ratio alpha =
        let system = Sampler.alpha_sample (Rng.split rng) base ~alpha in
        Semi_oblivious.congestion ~solver:stage4 g system d /. opt
      in
      Printf.printf "%-10s %5d | %10.2f %14.2f %14.2f\n"
        (Printf.sprintf "%dx%d" side side)
        (side * side) xy (ratio 4) (ratio 8))
    [ 4; 5; 6; 7 ];
  Printf.printf "shape: sparse samples grow slowly with n (consistent with the\n";
  Printf.printf "HKL07 log n / log log n floor) and stay far below XY routing.\n"

(* ------------------------------------------------------------------ *)
(* E14 — robustness (SMORE's selling point): single-link failures are
   absorbed by re-optimizing rates on the surviving candidates. *)

let e14 () =
  header "E14 robustness: single-link failures on Abilene";
  let module Robustness = Sso_core.Robustness in
  let rng = seeded 43 in
  let g, _ = Gen.abilene () in
  let d = Demand.random_pairs (Rng.split rng) ~n:(Graph.n g) ~pairs:10 in
  let racke = racke_routing (Rng.split rng) g in
  Printf.printf "10 unit flows, every one of the %d links failed in turn\n" (Graph.m g);
  Printf.printf "%-26s %12s %12s %12s\n" "path system" "unsurvivable"
    "mean ratio" "worst ratio";
  let evaluate name system =
    let reports = Robustness.single_failures ~solver:stage4 g system d in
    let s = Robustness.summary reports in
    Printf.printf "%-26s %12d %12.3f %12.3f\n" name s.Robustness.unsurvivable
      s.Robustness.mean_ratio s.Robustness.worst_ratio
  in
  evaluate "KSP-4 support" (Path_system.of_oblivious_support (Ksp.routing ~k:4 g));
  List.iter
    (fun alpha ->
      evaluate
        (Printf.sprintf "alpha-sample of Racke a=%d" alpha)
        (Sampler.alpha_sample (Rng.split rng) racke ~alpha))
    [ 2; 4; 8 ];
  Printf.printf "shape: growing alpha shrinks the set of failures that strand a\n";
  Printf.printf "pair, and every survivable failure is absorbed within a few\n";
  Printf.printf "percent of the damaged network's optimum -- rate adaptation\n";
  Printf.printf "needs no new path installation (SMORE's robustness story).\n"

(* ------------------------------------------------------------------ *)
(* E15 — the price of obliviousness: how much do α oblivious samples lose
   to the α best paths a clairvoyant operator would install for the
   revealed demand? *)

let e15 () =
  header "E15 price of obliviousness: samples vs demand-aware top-alpha";
  let module Oracle = Sso_core.Oracle in
  let g = Gen.grid 5 5 in
  let rng = seeded 53 in
  let base = racke_routing (Rng.split rng) g in
  let demands =
    List.init 3 (fun _ -> Demand.random_permutation (Rng.split rng) 25)
  in
  let opts = List.map (fun d -> Semi_oblivious.opt ~solver:opt_solver g d) demands in
  Printf.printf "5x5 grid, 3 random permutations; mean ratio vs optimum\n";
  Printf.printf "%5s | %18s %18s %12s\n" "alpha" "oblivious sample"
    "clairvoyant top-a" "gap";
  List.iter
    (fun alpha ->
      let sample_mean =
        let system = Sampler.alpha_sample (Rng.split rng) base ~alpha in
        List.fold_left2
          (fun acc d opt ->
            acc +. (Semi_oblivious.congestion ~solver:stage4 g system d /. opt))
          0.0 demands opts
        /. 3.0
      in
      let oracle_mean =
        List.fold_left2
          (fun acc d opt ->
            let system = Oracle.demand_aware_system ~solver:(Semi_oblivious.Mwu 400) g d ~alpha in
            acc +. (Semi_oblivious.congestion ~solver:stage4 g system d /. opt))
          0.0 demands opts
        /. 3.0
      in
      Printf.printf "%5d | %18.3f %18.3f %11.1f%%\n" alpha sample_mean oracle_mean
        ((sample_mean /. oracle_mean -. 1.0) *. 100.0))
    [ 1; 2; 4; 8 ];
  Printf.printf "shape: the oblivious penalty is large at alpha=1 and collapses\n";
  Printf.printf "to a few percent by alpha~4 -- obliviousness is nearly free\n";
  Printf.printf "once a handful of random paths are allowed (the paper's thesis).\n"

(* ------------------------------------------------------------------ *)
(* E16 — a day in the life: one fixed sampled path system, rates
   re-optimized per epoch, across a diurnal traffic day (the SMORE
   operating mode the paper's Section 1 cites: installing paths is slow,
   adapting rates every few minutes is cheap). *)

let e16 () =
  header "E16 over time: one installed system, a day of traffic epochs";
  let module Workload = Sso_demand.Workload in
  let rng = seeded 61 in
  let g, _ = Gen.abilene () in
  let racke = racke_routing (Rng.split rng) g in
  let ksp4 = Ksp.routing ~k:4 g in
  let smore = Sampler.alpha_sample (Rng.split rng) racke ~alpha:4 in
  let day = Workload.diurnal (Rng.split rng) ~n:(Graph.n g) ~epochs:12 ~peak_total:80.0 in
  Printf.printf "Abilene, 12 diurnal gravity epochs (trough 25%% of peak)\n";
  Printf.printf "%-26s %12s %12s\n" "scheme" "mean ratio" "worst epoch";
  let per_epoch f =
    List.map
      (fun d ->
        let opt = Semi_oblivious.opt ~solver:opt_solver g d in
        f d /. opt)
      day
  in
  let report name ratios =
    let arr = Array.of_list ratios in
    Printf.printf "%-26s %12.3f %12.3f\n" name (Stats.mean arr) (Stats.max_value arr)
  in
  report "KSP-4 (rates adapted)"
    (per_epoch (fun d ->
         Semi_oblivious.congestion ~solver:stage4 g
           (Path_system.of_oblivious_support ksp4) d));
  report "oblivious (no adaptation)" (per_epoch (fun d -> Oblivious.congestion racke d));
  report "semi-oblivious a=4" (per_epoch (fun d -> Semi_oblivious.congestion ~solver:stage4 g smore d));
  Printf.printf "shape: the same 4 installed paths per pair track the optimum\n";
  Printf.printf "through the whole day; no epoch needs new path installation.\n"

(* ------------------------------------------------------------------ *)
(* E17 — the proof as a router: Theorem 5.3's constructive pipeline
   (bucket → special → weak-route → halve → merge) vs the solver-based
   Stage 4 it certifies. *)

let e17 () =
  header "E17 the Theorem 5.3 pipeline as an executable router";
  let module Certified = Sso_core.Certified in
  let dim = 5 in
  let g = Gen.hypercube dim in
  let obl = Valiant.routing g in
  let rng = seeded 71 in
  let alpha = 2 * dim in
  let ps = Sampler.alpha_cut_sample (Rng.split rng) obl ~alpha in
  Printf.printf
    "hypercube-%d, (a+cut)-sample with a = %d, 3 random permutations\n" dim alpha;
  Printf.printf "%8s | %14s %14s %10s\n" "trial" "pipeline cong"
    "solver cong" "overhead";
  Array.iter print_string
  @@ Pool.parallel_init 3 (fun i ->
      let trial = i + 1 in
      let d = Demand.random_permutation (Rng.split_at rng trial) (Graph.n g) in
      let _, pipeline = Certified.route ~gamma:60.0 ~alpha g ps d in
      let solver = Semi_oblivious.congestion ~solver:stage4 g ps d in
      Printf.sprintf "%8d | %14.2f %14.2f %9.1fx\n" trial pipeline solver
        (pipeline /. solver));
  Printf.printf "shape: the combinatorial pipeline (no LP/MWU at routing time)\n";
  Printf.printf "lands within the O(log m) factors its reductions pay -- the\n";
  Printf.printf "proof of Theorem 5.3 literally routes packets.\n"

(* ------------------------------------------------------------------ *)
(* E18 — the control loop: when traffic drifts between snapshots, a
   warm-started Stage 4 with a handful of fresh rounds matches a cold
   solve at a fraction of its cost (how SMORE-style TE can re-optimize
   every few seconds). *)

let e18 () =
  header "E18 control loop: warm-started rate re-optimization under churn";
  let module Workload = Sso_demand.Workload in
  let rng = seeded 79 in
  let g, _ = Gen.abilene () in
  let base = racke_routing (Rng.split rng) g in
  let system = Sampler.alpha_sample (Rng.split rng) base ~alpha:4 in
  let epochs =
    Workload.random_walk (Rng.split rng) ~n:(Graph.n g) ~epochs:8 ~pairs:10 ~churn:0.3
  in
  Printf.printf "Abilene, alpha=4 system, 8 epochs with 30%% pair churn\n";
  Printf.printf "%6s | %12s %14s %12s\n" "epoch" "cold-300" "warm-20" "stale";
  let previous = ref None in
  List.iteri
    (fun i d ->
      let cands = Path_system.to_candidates system (Demand.support d) in
      let cold_routing, cold = Min_congestion.mwu_on_paths ~iters:300 g cands d in
      let warm =
        match !previous with
        | None -> cold
        | Some prev ->
            snd (Min_congestion.mwu_on_paths_warm ~iters:20 ~warm:prev ~warm_weight:60 g cands d)
      in
      (* Stale: keep yesterday's rates where defined, first candidate for
         new pairs, and never re-optimize. *)
      let stale =
        match !previous with
        | None -> cold
        | Some prev ->
            let patched =
              Routing.make
                (List.map
                   (fun (s, t) ->
                     match Routing.distribution prev s t with
                     | [] -> (
                         match Path_system.paths system s t with
                         | p :: _ -> ((s, t), [ (1.0, p) ])
                         | [] -> assert false)
                     | dist -> ((s, t), dist))
                   (Demand.support d))
            in
            Routing.congestion g patched d
      in
      previous := Some cold_routing;
      Printf.printf "%6d | %12.3f %14.3f %12.3f\n" (i + 1) cold warm stale)
    epochs;
  Printf.printf "shape: 20 warm rounds track the 300-round cold solve; frozen\n";
  Printf.printf "rates drift away as the traffic walks.\n"

(* ------------------------------------------------------------------ *)
(* E19 — latency under sustained load: packet streams over fixed path
   assignments.  Lower congestion is not cosmetic: it is the difference
   between stable queues and blow-up as offered load approaches capacity
   (the latency-vs-load curves of the TE literature). *)

let e19 () =
  header "E19 latency under load: deterministic paths vs adaptive sparse paths";
  let module Simulator = Sso_sim.Simulator in
  let rng = seeded 87 in
  (* One short route, three long ones; four flows between the terminals.
     Shortest-path routing stacks all four on the short edge; the
     congestion-aware integral assignment on the sampled candidates
     spreads them. *)
  let g = Gen.multi_path [ 1; 3; 3; 3 ] in
  let flows = 4 in
  let d = Demand.single_pair 0 1 (float_of_int flows) in
  let det_assignment =
    List.init flows (fun _ ->
        match Sso_graph.Shortest.bfs_path g 0 1 with
        | Some p -> ((0, 1), p)
        | None -> assert false)
  in
  let base =
    Memo.hop_constrained ?store:!store ~paths_per_pair:8 ~max_hops:3
      ~pairs:[ (0, 1) ] g
  in
  let system = Sampler.alpha_sample (Rng.split rng) base ~alpha:4 in
  let semi_raw, _ = Integral.congestion_upper ~solver:stage4 (Rng.split rng) g system d in
  let semi_assignment =
    List.concat_map
      (fun ((pair, paths) : (int * int) * Sso_graph.Path.t array) ->
        Array.to_list (Array.map (fun p -> (pair, p)) paths))
      (Array.to_list semi_raw)
  in
  let congestion_of assignment =
    (* Per (edge, direction), matching the simulator's capacity model. *)
    let loads = Hashtbl.create 64 in
    List.iter
      (fun ((_, p) : (int * int) * Sso_graph.Path.t) ->
        let vs = Sso_graph.Path.vertices g p in
        Array.iteri
          (fun i e ->
            let key = (e, vs.(i)) in
            Hashtbl.replace loads key
              (1 + try Hashtbl.find loads key with Not_found -> 0))
          p.Sso_graph.Path.edges)
      assignment;
    Hashtbl.fold (fun _ v acc -> max v acc) loads 0
  in
  let c_det = congestion_of det_assignment and c_semi = congestion_of semi_assignment in
  Printf.printf
    "1 short + 3 long routes, %d flows, 40 packets each; per-round congestion: det %d, semi %d\n"
    flows c_det c_semi;
  Printf.printf "%6s | %22s | %22s\n" "load" "deterministic (mean p99)"
    "semi-oblivious (mean p99)";
  let emissions = 40 in
  let run assignment period =
    let packets =
      List.concat_map
        (fun (pair, route) ->
          List.init emissions (fun i -> { Simulator.pair; route; release = i * period }))
        assignment
    in
    Simulator.completed_exn (Simulator.run_timed ~discipline:Simulator.Fifo g packets)
  in
  List.iter
    (fun load ->
      (* Period chosen so the semi assignment's bottleneck rate equals the
         offered load; the deterministic one then runs hotter. *)
      let period = max 1 (int_of_float (Float.ceil (float_of_int c_semi /. load))) in
      let det = run det_assignment period in
      let semi = run semi_assignment period in
      Printf.printf "%6.2f | %10.2f %11.2f | %10.2f %11.2f\n" load
        det.Simulator.mean_latency det.Simulator.p99_latency
        semi.Simulator.mean_latency semi.Simulator.p99_latency)
    [ 0.3; 0.6; 1.0 ];
  Printf.printf "shape: equal at light load; at capacity the higher-congestion\n";
  Printf.printf "deterministic paths queue without bound (latency ~ horizon)\n";
  Printf.printf "while the adaptive ones stay flat.\n"

(* ------------------------------------------------------------------ *)
(* E20 — Lemma 2.8's sparsity accounting: the completion-time ladder
   unions one α-sample per hop scale, so its total sparsity should sit
   near α·(#rungs) = O((log n / log log n)²), far below the full support
   of the hop-constrained routings it samples. *)

let e20 () =
  header "E20 ladder sparsity: Lemma 2.8's O((log n/log log n)^2) accounting";
  Printf.printf "%-10s %5s %6s | %8s %12s %14s\n" "graph" "n" "rungs" "alpha"
    "measured" "alpha x rungs";
  List.iter
    (fun (name, g) ->
      let rng = seeded 91 in
      let alpha = Sso_core.Theory.theorem_2_3_sparsity ~n:(Graph.n g) in
      let rungs = List.length (Completion.ladder_hops g) in
      let system = Completion.ladder_system (Rng.split rng) g ~alpha in
      let d = Demand.random_pairs (Rng.split rng) ~n:(Graph.n g) ~pairs:12 in
      let measured = Path_system.sparsity_on system (Demand.support d) in
      Printf.printf "%-10s %5d %6d | %8d %12d %14d\n" name (Graph.n g) rungs
        alpha measured (alpha * rungs))
    [
      ("grid-5x5", Gen.grid 5 5);
      ("torus-4x4", Gen.torus 4 4);
      ("cube-5", Gen.hypercube 5);
    ];
  Printf.printf "shape: measured sparsity ≤ alpha x rungs (union bound), i.e.\n";
  Printf.printf "quadratically-logarithmic as Lemma 2.8 charges.\n"

(* ------------------------------------------------------------------ *)
(* --kernels: wall-clock micro-benchmarks of the shortest-path/MWU
   kernel stack (the hot path every experiment bottoms out in).  Each
   bench records a [kernels.<name>.seconds] scalar, so
   [--kernels --json F] tracks the perf trajectory; BENCH_kernels.json
   holds the committed baseline. *)

let kernel_cases () =
  let module Shortest = Sso_graph.Shortest in
  let module Concurrent_flow = Sso_flow.Concurrent_flow in
  (* Expander-ish substrate: large enough that the oracle dominates. *)
  let g = Gen.random_regular (seeded 97) 96 4 in
  let weight e = 1.0 +. (float_of_int e *. 1e-6) in
  (* The MWU-dominated family: multi-commodity demand whose commodities
     share sources (4 sources x 8 targets), the regime source-batched
     oracles are built for. *)
  let shared =
    Demand.of_list
      (List.concat_map
         (fun s -> List.init 8 (fun i -> (s, 40 + (8 * s) + i, 1.0)))
         [ 0; 1; 2; 3 ])
  in
  let grid = Gen.grid 7 7 in
  let d = Demand.random_pairs (seeded 98) ~n:49 ~pairs:24 in
  let base = Ksp.routing ~k:4 grid in
  let system = Sampler.alpha_sample (seeded 99) base ~alpha:4 in
  let cands = Path_system.to_candidates system (Demand.support d) in
  [
    ( "sssp_all_sources",
      fun () ->
        for v = 0 to Graph.n g - 1 do
          ignore (Shortest.dijkstra g ~weight v)
        done );
    ( "mwu_unrestricted_shared",
      fun () -> ignore (Min_congestion.mwu_unrestricted ~iters:100 g shared) );
    ( "mwu_hop_limited_shared",
      fun () ->
        ignore (Min_congestion.mwu_hop_limited ~iters:20 ~max_hops:10 g shared)
    );
    ( "mwu_candidates",
      fun () -> ignore (Min_congestion.mwu_on_paths ~iters:150 grid cands d) );
    ( "gk_candidates",
      fun () -> ignore (Concurrent_flow.on_paths ~epsilon:0.1 grid cands d) );
    ( "frt_build_grid",
      fun () -> ignore (Frt.build (seeded 100) grid ~length:(fun _ -> 1.0)) );
    ( "racke_forest_grid",
      fun () -> ignore (Racke.forest (seeded 101) ~trees:4 ~batch:2 grid) );
  ]

let timed_best ?(reps = 3) f =
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best

let kernels () =
  header "kernels  (wall-clock, best of 3 runs)";
  let bench (name, f) =
    let s = timed_best (fun () -> Obs.traced ("kernels." ^ name) f) in
    scalar (Printf.sprintf "kernels.%s.seconds" name) s;
    Printf.printf "%-36s %12.4f s\n" name s
  in
  List.iter bench (kernel_cases ());
  Printf.printf
    "families: sssp (Dijkstra kernel), mwu_* (oracle-dominated solves),\n";
  Printf.printf
    "gk (sequential cheapest-path packing), frt/racke (ball-growing FRT,\n";
  Printf.printf "MWU tree mixture).\n"

(* ------------------------------------------------------------------ *)
(* --obs-guard: assert that the observability layer is cheap enough to
   leave on.  Three guarded surfaces:

   1. tracing off — the kernel suite runs twice with tracing disabled
      (their spread bounds machine noise) and is compared against the
      committed BENCH_kernels.json post_seconds baseline recorded before
      lib/obs existed;
   2. live telemetry — a third pass wraps every kernel call exactly like
      a serve tick (wall-timed, duration into a rolling quantile, a
      gauge set) and is gated against the tracing-off pass, so the
      serve-loop instrumentation provably rides for free;
   3. primitive cost — ns/op microbenches for [set_gauge] and
      [observe_quantile] plus one [snapshot]+[expose] render, recorded
      as scalars (not gated: absolute ns, not a ratio).

   A fourth, tracing-enabled pass is reported for context but not gated
   (event emission is allowed to cost). *)

let obs_guard () =
  header "obs-guard  (tracing-off + telemetry overhead vs BENCH_kernels.json)";
  let cases = kernel_cases () in
  let measure () =
    List.map (fun (name, f) -> (name, timed_best ~reps:5 f)) cases
  in
  Obs.set_tracing false;
  let off1 = measure () in
  let off2 = measure () in
  let tel =
    List.map
      (fun (name, f) ->
        let q = Obs.quantile (Printf.sprintf "obs_guard.%s.ns" name) in
        let g = Obs.gauge (Printf.sprintf "obs_guard.%s.last_ns" name) in
        ( name,
          timed_best ~reps:5 (fun () ->
              let t0 = Obs.now_ns () in
              f ();
              let d = Obs.now_ns () - t0 in
              Obs.observe_quantile q d;
              Obs.set_gauge g (float_of_int d)) ))
      cases
  in
  Obs.set_tracing true;
  let on_ = measure () in
  Obs.set_tracing false;
  Obs.clear_trace ();
  let micro_ns ops f =
    let t0 = Obs.now_ns () in
    for i = 1 to ops do
      f i
    done;
    float_of_int (Obs.now_ns () - t0) /. float_of_int ops
  in
  let mq = Obs.quantile "obs_guard.micro_quantile" in
  let mg = Obs.gauge "obs_guard.micro_gauge" in
  let quantile_ns = micro_ns 1_000_000 (fun i -> Obs.observe_quantile mq i) in
  let gauge_ns = micro_ns 1_000_000 (fun i -> Obs.set_gauge mg (float_of_int i)) in
  let expose_s =
    timed_best ~reps:5 (fun () -> ignore (Obs.expose (Obs.snapshot ())))
  in
  scalar "obs_guard.quantile_ns_per_op" quantile_ns;
  scalar "obs_guard.gauge_ns_per_op" gauge_ns;
  scalar "obs_guard.expose_seconds" expose_s;
  Printf.printf
    "primitives: observe_quantile %.0f ns/op  set_gauge %.0f ns/op  \
     snapshot+expose %.4f s\n"
    quantile_ns gauge_ns expose_s;
  let baseline =
    match In_channel.with_open_bin "BENCH_kernels.json" In_channel.input_all with
    | text -> (
        match Trace.Json.member "kernels" (Trace.Json.parse text) with
        | Some (Trace.Json.Obj entries) ->
            List.filter_map
              (fun (name, v) ->
                Option.map
                  (fun f -> (name, f))
                  (Option.bind
                     (Trace.Json.member "post_seconds" v)
                     Trace.Json.number))
              entries
        | _ -> []
        | exception Trace.Corrupt _ -> [])
    | exception Sys_error _ ->
        Printf.printf "(no BENCH_kernels.json in cwd: baseline gate skipped)\n";
        []
  in
  Printf.printf "%-26s %10s %10s %10s %7s %7s %10s %7s\n" "kernel" "off(s)"
    "tel(s)" "on(s)" "tel_x" "drift%" "base(s)" "ratio";
  let failed = ref false in
  List.iter
    (fun (name, a) ->
      let b = List.assoc name off2 in
      let t_tel = List.assoc name tel in
      let t_on = List.assoc name on_ in
      let off = Float.min a b in
      let drift = Float.abs (a -. b) /. Float.max a b *. 100.0 in
      let tel_ratio = t_tel /. off in
      scalar (Printf.sprintf "obs_guard.%s.off_seconds" name) off;
      scalar (Printf.sprintf "obs_guard.%s.tel_seconds" name) t_tel;
      scalar (Printf.sprintf "obs_guard.%s.tel_ratio" name) tel_ratio;
      scalar (Printf.sprintf "obs_guard.%s.on_seconds" name) t_on;
      scalar (Printf.sprintf "obs_guard.%s.drift_pct" name) drift;
      let base = List.assoc_opt name baseline in
      let ratio = Option.map (fun b0 -> off /. b0) base in
      Printf.printf "%-26s %10.4f %10.4f %10.4f %7.2f %6.1f%% %10s %7s\n" name
        off t_tel t_on tel_ratio drift
        (match base with Some b0 -> Printf.sprintf "%.4f" b0 | None -> "-")
        (match ratio with Some r -> Printf.sprintf "%.2f" r | None -> "-");
      if tel_ratio > 1.25 then begin
        failed := true;
        Printf.printf "FAIL %s: per-call telemetry run is %.2fx tracing-off\n"
          name tel_ratio
      end;
      (match ratio with
      | Some r ->
          scalar (Printf.sprintf "obs_guard.%s.ratio" name) r;
          if r > 1.25 then begin
            failed := true;
            Printf.printf "FAIL %s: disabled-tracing run is %.2fx baseline\n"
              name r
          end
      | None -> ());
      if drift > 15.0 then
        Printf.printf "warn %s: %.1f%% drift between disabled runs (noisy box)\n"
          name drift)
    off1;
  if !failed then begin
    Printf.printf
      "obs-guard: FAILED (tracing-off or telemetry overhead above 1.25x)\n";
    exit 1
  end
  else
    Printf.printf
      "obs-guard: ok (tracing off and per-call telemetry within noise)\n"

(* ------------------------------------------------------------------ *)
(* --faults: the fault-injection family (BENCH_faults.json): scenario
   sweeps with warm-started recovery, an SRLG timeline run with
   mid-flight failover, and the greedy worst-k search. *)

let faults () =
  header "faults  (scenario sweeps, timeline failover, worst-k)";
  let module Scenario = Sso_fault.Scenario in
  let module Timeline = Sso_fault.Timeline in
  let module Fault_sweep = Sso_fault.Sweep in
  let module Simulator = Sso_sim.Simulator in
  let solver = stage4 in
  let bench name f =
    let s = timed_best (fun () -> Obs.traced ("faults." ^ name) f) in
    scalar (Printf.sprintf "faults.%s.seconds" name) s;
    Printf.printf "%-36s %12.4f s\n" name s
  in
  (* Abilene: every single-link failure, with the warm-restart ladder. *)
  let g, _ = Gen.abilene () in
  let rng = seeded 71 in
  let base = racke_routing (Rng.split rng) g in
  let system = Sampler.alpha_sample (Rng.split rng) base ~alpha:4 in
  let demand = Demand.random_pairs (Rng.split rng) ~n:(Graph.n g) ~pairs:8 in
  let system_key = Printf.sprintf "bench-abilene-a4-seed%d" !master_seed in
  let reports = ref [] in
  bench "abilene_singles" (fun () ->
      reports :=
        Fault_sweep.run ?store:!store ~system_key ~solver
          ~recovery:Fault_sweep.default_recovery g system demand
          (Fault_sweep.singles g));
  let s = Fault_sweep.summary !reports in
  scalar "faults.abilene.mean_ratio" s.Fault_sweep.mean_ratio;
  scalar "faults.abilene.worst_ratio" s.Fault_sweep.worst_ratio;
  scalar "faults.abilene.unsurvivable" (float_of_int s.Fault_sweep.unsurvivable);
  scalar "faults.abilene.mean_recovery_rounds" s.Fault_sweep.mean_recovery_rounds;
  Printf.printf
    "abilene singles: %d scenarios, %d unsurvivable, mean ratio %.3f, mean \
     recovery %.1f mwu rounds\n"
    s.Fault_sweep.scenarios s.Fault_sweep.unsurvivable s.Fault_sweep.mean_ratio
    s.Fault_sweep.mean_recovery_rounds;
  (* Torus: correlated row SRLGs, then one of them failed mid-flight. *)
  let rows = 5 and cols = 5 in
  let gt = Gen.torus rows cols in
  let rng_t = seeded 72 in
  let base_t = racke_routing (Rng.split rng_t) gt in
  let system_t = Sampler.alpha_sample (Rng.split rng_t) base_t ~alpha:4 in
  let demand_t =
    Demand.random_pairs (Rng.split rng_t) ~n:(Graph.n gt) ~pairs:10
  in
  let srlgs = Scenario.torus_rows gt ~rows ~cols in
  let reports_t = ref [] in
  bench "torus_srlg" (fun () ->
      reports_t := Fault_sweep.run ~solver gt system_t demand_t srlgs);
  let st = Fault_sweep.summary !reports_t in
  scalar "faults.torus.mean_ratio" st.Fault_sweep.mean_ratio;
  scalar "faults.torus.worst_ratio" st.Fault_sweep.worst_ratio;
  scalar "faults.torus.unsurvivable" (float_of_int st.Fault_sweep.unsurvivable);
  Printf.printf "torus row SRLGs: %d scenarios, %d unsurvivable, mean ratio %.3f\n"
    st.Fault_sweep.scenarios st.Fault_sweep.unsurvivable st.Fault_sweep.mean_ratio;
  let assignment, _ =
    Integral.congestion_upper (Rng.split rng_t) gt system_t demand_t
  in
  let timeline = [ Timeline.entry ~at:3 (List.nth srlgs 2) ] in
  let fs = ref None in
  bench "torus_timeline" (fun () ->
      fs := Some (Simulator.value (Timeline.simulate gt system_t assignment timeline)));
  (match !fs with
  | None -> ()
  | Some fs ->
      scalar "faults.timeline.makespan" (float_of_int fs.Simulator.base.Simulator.makespan);
      scalar "faults.timeline.dropped" (float_of_int fs.Simulator.dropped);
      scalar "faults.timeline.rerouted" (float_of_int fs.Simulator.rerouted);
      scalar "faults.timeline.recovery_makespan"
        (float_of_int fs.Simulator.recovery_makespan);
      Printf.printf
        "timeline (row SRLG at step 3): makespan %d, rerouted %d, dropped %d, \
         recovery makespan %d\n"
        fs.Simulator.base.Simulator.makespan fs.Simulator.rerouted
        fs.Simulator.dropped fs.Simulator.recovery_makespan);
  (* Greedy worst-k on Abilene. *)
  let worst = ref None in
  bench "abilene_worst2" (fun () ->
      worst :=
        Some (Fault_sweep.worst_k ?store:!store ~system_key ~solver g system demand ~k:2));
  (match !worst with
  | None -> ()
  | Some w ->
      scalar "faults.worst2.ratio" w.Fault_sweep.ratio;
      Printf.printf "greedy worst-2: %s ratio %.3f\n"
        w.Fault_sweep.scenario.Scenario.label w.Fault_sweep.ratio)

(* ------------------------------------------------------------------ *)
(* Bechamel timing suite: one micro-benchmark per experiment family. *)

let timing () =
  let open Bechamel in
  header "timing  (Bechamel, monotonic clock, ns/run)";
  let cube = Gen.hypercube 6 in
  let valiant = Valiant.routing cube in
  (* Warm the distribution caches so the benches time the algorithm, not
     cache population. *)
  ignore (Oblivious.distribution valiant 0 63);
  let grid = Gen.grid 5 5 in
  let cliques = Gen.two_cliques 12 in
  let c_gadget = Gen.c_graph 12 6 in
  let prepared_system =
    Sampler.alpha_sample (Rng.create 3) valiant ~alpha:6
  in
  let perm = Demand.random_permutation (Rng.create 4) 64 in
  (* Pre-materialize candidates for the stage-4 bench. *)
  ignore (Path_system.to_candidates prepared_system (Demand.support perm));
  let attack_base = Ksp.routing ~k:12 c_gadget.Gen.c_graph in
  let attack_system = Sampler.alpha_sample (Rng.create 5) attack_base ~alpha:2 in
  ignore (Lower_bound.attack c_gadget attack_system);
  let tests =
    [
      Test.make ~name:"sample: draw 1 path (valiant)"
        (Staged.stage (fun () ->
             let rng = Rng.create 1 in
             ignore (Oblivious.sample rng valiant 0 63)));
      Test.make ~name:"stage4: mwu-50 on hypercube perm"
        (Staged.stage (fun () ->
             ignore
               (Semi_oblivious.congestion ~solver:(Semi_oblivious.Mwu 50) cube
                  prepared_system perm)));
      Test.make ~name:"stage4: exact LP, 4 pairs on grid"
        (Staged.stage
           (let d = Demand.random_pairs (Rng.create 6) ~n:25 ~pairs:4 in
            let base = Ksp.routing ~k:3 grid in
            let system = Sampler.alpha_sample (Rng.create 7) base ~alpha:3 in
            ignore (Semi_oblivious.congestion ~solver:Semi_oblivious.Lp grid system d);
            fun () ->
              ignore
                (Semi_oblivious.congestion ~solver:Semi_oblivious.Lp grid system d)));
      Test.make ~name:"maxflow: dinic cut on two-cliques-12"
        (Staged.stage (fun () -> ignore (Maxflow.cut cliques 0 23)));
      Test.make ~name:"frt: build tree on 5x5 grid"
        (Staged.stage
           (let rng = Rng.create 8 in
            fun () -> ignore (Frt.build rng grid ~length:(fun _ -> 1.0))));
      Test.make ~name:"adversary: attack C(12,6) a=2"
        (Staged.stage (fun () -> ignore (Lower_bound.attack c_gadget attack_system)));
      Test.make ~name:"process: weak_route hypercube perm"
        (Staged.stage (fun () ->
             ignore (Process.weak_route ~gamma:8.0 cube prepared_system perm)));
    ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:None () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ]) in
      let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let name =
            match String.index_opt name '/' with
            | Some i -> String.sub name (i + 1) (String.length name - i - 1)
            | None -> name
          in
          match Analyze.OLS.estimates ols_result with
          | Some [ ns ] ->
              if ns >= 1e6 then Printf.printf "%-40s %12.3f ms/run\n" name (ns /. 1e6)
              else Printf.printf "%-40s %12.1f ns/run\n" name ns
          | _ -> Printf.printf "%-40s %12s\n" name "n/a")
        analyzed)
    tests

(* ------------------------------------------------------------------ *)
(* --scale: arena-backed path storage at fat-tree scale
   (BENCH_scale.json).  Builds a k-ary fat-tree (k = 284 by default:
   n = (k/2)^2 + k^2 = 100,820 switches), alpha-samples a Wilson-forest
   oblivious base for a batch of random pairs through
   [Path_system.materialize_parallel], and reports sampling throughput
   (path-nodes appended per second) plus per-pair storage for the packed
   arena against the boxed list-of-[Path.t] view of the same candidate
   sets.  The run fails if the arena is not at least 4x smaller.  A
   digest of the sampled system is printed so scale_smoke.sh can check
   warm-cache runs byte-identical to cold ones. *)

let scale_k = ref 284
let scale_pairs = ref 1024
let scale_racke_trees = ref 2

let scale () =
  let module Trees = Sso_oblivious.Trees in
  let module Arena = Sso_graph.Arena in
  let k = !scale_k in
  header (Printf.sprintf "scale  (fat-tree k = %d, arena-backed sampling)" k);
  let g = Gen.fat_tree k in
  let n = Graph.n g in
  scalar "scale.n" (float_of_int n);
  scalar "scale.m" (float_of_int (Graph.m g));
  Printf.printf "fat-tree: n = %d, m = %d\n" n (Graph.m g);
  let obl = Trees.uniform (seeded 131) ~count:4 g in
  let npairs = !scale_pairs in
  let pairs =
    let pr = seeded 132 in
    let seen = Hashtbl.create npairs in
    let rec draw acc c =
      if c = 0 then List.rev acc
      else
        let s = Rng.int pr n in
        let t = Rng.int pr n in
        if s = t || Hashtbl.mem seen (s, t) then draw acc c
        else begin
          Hashtbl.add seen (s, t) ();
          draw ((s, t) :: acc) (c - 1)
        end
    in
    draw [] npairs
  in
  let alpha = 4 in
  let ps =
    match !store with
    | Some st ->
        Memo.alpha_sample ~store:st ~base_key:"wilson-4" (seeded 133) obl
          ~alpha ~pairs
    | None -> Sampler.alpha_sample (seeded 133) obl ~alpha
  in
  let t0 = Unix.gettimeofday () in
  Path_system.materialize_parallel ps pairs;
  let dt = Unix.gettimeofday () -. t0 in
  let arena = Path_system.arena ps in
  let slices = Arena.length arena in
  let path_nodes = ref 0 in
  for i = 0 to slices - 1 do
    path_nodes := !path_nodes + Arena.hops arena i + 1
  done;
  let nodes_per_sec = float_of_int !path_nodes /. dt in
  let arena_bytes = Arena.memory_bytes arena in
  (* The boxed baseline reconstructs the same candidate sets as the
     pre-arena representation: a list of ((s,t), Path.t list) with one
     fresh edge array per path.  [Obj.reachable_words] measures exactly
     that structure (paths share nothing with the graph). *)
  let boxed = List.map (fun (s, t) -> ((s, t), Path_system.paths ps s t)) pairs in
  let boxed_bytes = Obj.reachable_words (Obj.repr boxed) * (Sys.word_size / 8) in
  let bpp_arena = float_of_int arena_bytes /. float_of_int npairs in
  let bpp_boxed = float_of_int boxed_bytes /. float_of_int npairs in
  let reduction = bpp_boxed /. bpp_arena in
  scalar "scale.pairs" (float_of_int npairs);
  scalar "scale.alpha" (float_of_int alpha);
  scalar "scale.paths" (float_of_int slices);
  scalar "scale.path_nodes" (float_of_int !path_nodes);
  scalar "scale.materialize_seconds" dt;
  scalar "scale.nodes_per_sec" nodes_per_sec;
  scalar "scale.bytes_per_pair.arena" bpp_arena;
  scalar "scale.bytes_per_pair.boxed" bpp_boxed;
  scalar "scale.bytes_per_pair.reduction" reduction;
  Printf.printf "pairs = %d, alpha = %d, stored paths = %d, path-nodes = %d\n"
    npairs alpha slices !path_nodes;
  Printf.printf "materialize: %.4f s (%.3e path-nodes/sec)\n" dt nodes_per_sec;
  Printf.printf "bytes/pair: arena %.1f vs boxed %.1f (%.2fx smaller)\n"
    bpp_arena bpp_boxed reduction;
  (* The candidate sets themselves are deterministic for any job count;
     the digest covers src/dst/hop content of every slice in canonical
     pair order, so cold and warm-cache runs must print the same line. *)
  let ranges =
    List.map (fun (s, t) -> ((s, t), Path_system.slice_range ps s t)) pairs
  in
  let digest =
    Codec.hex_of_key
      (Codec.fnv1a64 (Codec.encode_path_system_slices arena ranges))
  in
  Printf.printf "system digest: %s\n" digest;
  if reduction < 4.0 then begin
    Printf.printf "FAIL scale: arena reduction %.2fx below the 4x floor\n"
      reduction;
    exit 1
  end
  else Printf.printf "scale: ok (arena %.2fx under the boxed baseline)\n" reduction;
  (* Räcke at scale: the paper's own Stage-1 construction on the same
     fat-tree, built level-wise by ball growing (no n×n distance matrix —
     memory stays O(n·levels + m)).  batch = 1 keeps the MWU maximally
     sequential: every tree sees the penalties of all its predecessors.
     The forest digest covers every tree's parts, so warm-cache runs must
     print the same line as cold ones. *)
  let trees = !scale_racke_trees in
  let t0 = Unix.gettimeofday () in
  let forest =
    match !store with
    | Some st -> Memo.racke_forest ~store:st (seeded 134) ~trees ~batch:1 g
    | None -> Racke.forest (seeded 134) ~trees ~batch:1 g
  in
  let racke_dt = Unix.gettimeofday () -. t0 in
  let max_levels = List.fold_left (fun acc t -> max acc (Frt.levels t)) 0 forest in
  let racke_nodes_per_sec = float_of_int (n * trees) /. racke_dt in
  let working_set =
    float_of_int (Obj.reachable_words (Obj.repr forest) * (Sys.word_size / 8))
  in
  scalar "racke.trees" (float_of_int trees);
  scalar "racke.levels" (float_of_int max_levels);
  scalar "racke.build_seconds" racke_dt;
  scalar "racke.nodes_per_sec" racke_nodes_per_sec;
  scalar "racke.working_set_bytes" working_set;
  Printf.printf "racke: %d trees, max %d levels, batch 1\n" trees max_levels;
  Printf.printf "racke build: %.2f s (%.0f nodes/sec, working set %.1f MB)\n"
    racke_dt racke_nodes_per_sec (working_set /. 1048576.0);
  let forest_digest =
    Codec.hex_of_key
      (Codec.fnv1a64 (Codec.encode_forest (List.map Frt.to_parts forest)))
  in
  Printf.printf "racke forest digest: %s\n" forest_digest;
  (* Throughput floor in the --obs-guard pattern: gate against the
     committed baseline, but only when it describes this instance (the
     smoke runs a smaller k) and with a 2x allowance for machine noise —
     the gate exists to catch the construction regressing to super-linear
     behavior, not jitter. *)
  let baseline key =
    match In_channel.with_open_bin "BENCH_scale.json" In_channel.input_all with
    | text -> (
        match Trace.Json.member "scalars" (Trace.Json.parse text) with
        | Some scalars ->
            Option.bind (Trace.Json.member key scalars) Trace.Json.number
        | None -> None
        | exception Trace.Corrupt _ -> None)
    | exception Sys_error _ -> None
  in
  match (baseline "scale.n", baseline "racke.nodes_per_sec") with
  | Some n0, Some floor_base when int_of_float n0 = n ->
      if racke_nodes_per_sec < floor_base /. 2.0 then begin
        Printf.printf
          "FAIL racke: %.0f nodes/sec below half the %.0f baseline\n"
          racke_nodes_per_sec floor_base;
        exit 1
      end
      else
        Printf.printf "racke: ok (throughput within 2x of committed baseline)\n"
  | _ -> Printf.printf "racke: ok (no matching baseline: floor gate skipped)\n"

(* --serve: the routing-service family (BENCH_serve.json).  Generates a
   churn stream on a WAN-scale random-regular topology, replays it twice
   through [Serve] — once warm (MWU weights carried across ticks, the
   service's operating mode) and once with a cold re-solve forced every
   tick — and reports replay throughput (updates/sec) plus the per-tick
   re-solve latency distribution of both modes.  The run fails unless the
   warm p99 is at least 3x faster than the cold p99: carrying the weights
   must beat re-solving from scratch by a wide margin, or the service has
   no reason to exist.  Quality is tracked alongside (warm vs cold final
   congestion) so the speedup is never bought with a bad routing. *)

let serve_nodes = ref 64
let serve_ticks = ref 40
let serve_churn_pairs = ref 64

let serve () =
  let module Serve = Sso_serve.Serve in
  let module Workload = Sso_demand.Workload in
  let module Trees = Sso_oblivious.Trees in
  let n = !serve_nodes in
  header
    (Printf.sprintf "serve  (churn service, %d-node WAN, %d ticks)" n
       !serve_ticks);
  let g = Gen.random_regular (seeded 140) n 4 in
  scalar "serve.n" (float_of_int (Graph.n g));
  scalar "serve.m" (float_of_int (Graph.m g));
  let obl = Trees.uniform (seeded 141) ~count:4 g in
  let events =
    Workload.generate ~rate_churn:0.2 (seeded 142) ~n ~ticks:!serve_ticks
      ~pairs:!serve_churn_pairs ~churn:0.15
  in
  let nevents = List.length events in
  Printf.printf "stream: %d events over %d ticks (%d active pairs)\n" nevents
    !serve_ticks !serve_churn_pairs;
  scalar "serve.events" (float_of_int nevents);
  scalar "serve.ticks" (float_of_int !serve_ticks);
  scalar "serve.pairs" (float_of_int !serve_churn_pairs);
  let replay config =
    (* A fresh sampled system per mode: both runs admit the same pairs
       from the same rng child, so the candidate sets are identical. *)
    let system = Sampler.alpha_sample (seeded 143) obl ~alpha:4 in
    let srv = Serve.create ~config g system in
    let t0 = Unix.gettimeofday () in
    let reports = Serve.replay srv events in
    let dt = Unix.gettimeofday () -. t0 in
    (reports, dt)
  in
  let warm_cfg = Serve.default_config in
  let cold_cfg = { Serve.default_config with refresh_every = 1 } in
  (* Cold first, warm second: the warm numbers are the cache-hot ones the
     gate judges, as they would be in a long-lived process. *)
  let cold_reports, _cold_dt = replay cold_cfg in
  let warm_reports, warm_dt = replay warm_cfg in
  let updates_per_sec = float_of_int nevents /. warm_dt in
  (* Per-tick re-solve latency, skipping tick 0: both modes solve it cold
     (the service has no history yet), so it measures nothing. *)
  let tick_ms reports =
    List.filter_map
      (fun (r : Serve.report) ->
        if r.Serve.tick = 0 then None
        else Some (float_of_int r.Serve.solve_ns /. 1e6))
      reports
  in
  let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
  let p99 xs =
    let a = Array.of_list xs in
    Array.sort compare a;
    a.((99 * (Array.length a - 1) + 50) / 100)
  in
  let warm_ms = tick_ms warm_reports and cold_ms = tick_ms cold_reports in
  let final_congestion reports =
    match List.rev reports with
    | (r : Serve.report) :: _ -> r.Serve.congestion
    | [] -> nan
  in
  let warm_final = final_congestion warm_reports in
  let cold_final = final_congestion cold_reports in
  let speedup_mean = mean cold_ms /. mean warm_ms in
  let speedup_p99 = p99 cold_ms /. p99 warm_ms in
  let max_staleness =
    List.fold_left
      (fun acc (r : Serve.report) -> max acc r.Serve.staleness)
      0 warm_reports
  in
  scalar "serve.updates_per_sec" updates_per_sec;
  scalar "serve.warm_tick_ms.mean" (mean warm_ms);
  scalar "serve.warm_tick_ms.p99" (p99 warm_ms);
  scalar "serve.cold_tick_ms.mean" (mean cold_ms);
  scalar "serve.cold_tick_ms.p99" (p99 cold_ms);
  scalar "serve.speedup.mean" speedup_mean;
  scalar "serve.speedup.p99" speedup_p99;
  scalar "serve.congestion.warm" warm_final;
  scalar "serve.congestion.cold" cold_final;
  scalar "serve.quality_ratio" (warm_final /. cold_final);
  scalar "serve.staleness.max" (float_of_int max_staleness);
  Printf.printf "throughput: %.0f updates/sec (warm replay, %.1f ms total)\n"
    updates_per_sec (warm_dt *. 1e3);
  Printf.printf
    "re-solve per tick: warm mean %.2f ms p99 %.2f ms | cold mean %.2f ms \
     p99 %.2f ms\n"
    (mean warm_ms) (p99 warm_ms) (mean cold_ms) (p99 cold_ms);
  Printf.printf "speedup: mean %.1fx, p99 %.1fx\n" speedup_mean speedup_p99;
  Printf.printf
    "quality: warm congestion %.4f vs cold %.4f (ratio %.3f), max staleness \
     %d\n"
    warm_final cold_final (warm_final /. cold_final) max_staleness;
  if speedup_p99 < 3.0 then begin
    Printf.printf
      "FAIL serve: warm p99 speedup %.2fx below the 3x floor\n" speedup_p99;
    exit 1
  end
  else
    Printf.printf "serve: ok (warm re-solve %.1fx faster at p99)\n" speedup_p99

(* --serve-faults: the fault-in-the-loop family (also BENCH_serve.json).
   Same WAN and churn stream as --serve, but a worst-k outage (picked by
   the Sweep adversary against the demand the service is carrying at the
   failure instant) strikes a third of the way in and repairs at two
   thirds.  Three replays: warm (the operating mode), per-tick cold (the
   quality oracle under the same faults), and warm with a small event
   budget (to measure how much of the outage window is served stale).
   The gate is the recovery makespan — the number of ticks after the
   failure the warm service needs before its congestion is back within
   10% of the faulted cold oracle.  A long makespan means carrying the
   weights across a topology change does not work and the service would
   have to fall back to cold re-solves exactly when it can least afford
   them. *)

let serve_fault_k = ref 3
let serve_fault_budget = ref 24

let serve_faults () =
  let module Serve = Sso_serve.Serve in
  let module Workload = Sso_demand.Workload in
  let module Update = Sso_demand.Update in
  let module Trees = Sso_oblivious.Trees in
  let module Scenario = Sso_fault.Scenario in
  let module Timeline = Sso_fault.Timeline in
  let module Fault_sweep = Sso_fault.Sweep in
  let n = !serve_nodes in
  let k = !serve_fault_k in
  header
    (Printf.sprintf "serve-faults  (worst-%d outage, %d-node WAN, %d ticks)" k
       n !serve_ticks);
  let g = Gen.random_regular (seeded 140) n 4 in
  let obl = Trees.uniform (seeded 141) ~count:4 g in
  let events =
    Workload.generate ~rate_churn:0.2 (seeded 142) ~n ~ticks:!serve_ticks
      ~pairs:!serve_churn_pairs ~churn:0.15
  in
  let fail_at = max 1 (!serve_ticks / 3) in
  let repair_at = max (fail_at + 1) (2 * !serve_ticks / 3) in
  (* The adversary picks the k edges that hurt the demand the service is
     actually carrying when the outage strikes. *)
  let demand0 =
    Update.apply Demand.empty
      (List.filter (fun (e : Update.t) -> e.Update.tick < fail_at) events)
  in
  let sweep_system = Sampler.alpha_sample (seeded 143) obl ~alpha:4 in
  let worst = Fault_sweep.worst_k ?store:!store g sweep_system demand0 ~k in
  let scenario = worst.Fault_sweep.scenario in
  Printf.printf "scenario: %s — fails tick %d, repairs tick %d\n"
    scenario.Scenario.label fail_at repair_at;
  let faults =
    Serve.faults_of_timeline [ Timeline.entry ~at:fail_at ~repair_at scenario ]
  in
  let replay ?(faults = faults) config =
    let system = Sampler.alpha_sample (seeded 143) obl ~alpha:4 in
    let srv = Serve.create ~config g system in
    let reports = Serve.replay ~faults srv events in
    reports
  in
  let cold_reports =
    replay { Serve.default_config with refresh_every = 1 }
  in
  let warm_reports = replay Serve.default_config in
  let baseline_reports = replay ~faults:[] Serve.default_config in
  let congestion_at reports t =
    List.find_map
      (fun (r : Serve.report) ->
        if r.Serve.tick = t then Some r.Serve.congestion else None)
      reports
  in
  (* Recovery makespan: once the outage is repaired the topology is back
     to normal, so the faulted warm replay must converge to its own
     unfaulted trajectory — the last tick >= repair_at still more than
     10% above it, counted from the repair (0 = instant re-absorption).
     The outage window itself is excluded: there, congestion is
     legitimately higher because the edges are gone (reported separately
     against the faulted cold oracle). *)
  let recovery_makespan =
    List.fold_left
      (fun acc (r : Serve.report) ->
        match congestion_at baseline_reports r.Serve.tick with
        | Some base
          when r.Serve.tick >= repair_at
               && r.Serve.congestion > (1.10 *. base) +. 1e-9 ->
            max acc (r.Serve.tick - repair_at + 1)
        | _ -> acc)
      0 warm_reports
  in
  let sum_field f reports =
    List.fold_left (fun acc r -> acc + f r) 0 reports
  in
  let rerouted = sum_field (fun r -> r.Serve.rerouted) warm_reports in
  let max_unroutable =
    List.fold_left (fun acc r -> max acc r.Serve.unroutable) 0 warm_reports
  in
  (* Degraded-tick fraction: replay the same outage with a small event
     budget and count the ticks served stale. *)
  let degraded_reports =
    replay { Serve.default_config with event_budget = !serve_fault_budget }
  in
  let degraded_ticks =
    sum_field
      (fun r -> if r.Serve.mode = Serve.Degraded then 1 else 0)
      degraded_reports
  in
  let deferred_total = sum_field (fun r -> r.Serve.deferred) degraded_reports in
  let degraded_fraction =
    float_of_int degraded_ticks /. float_of_int (List.length degraded_reports)
  in
  scalar "serve_faults.k" (float_of_int k);
  scalar "serve_faults.fail_tick" (float_of_int fail_at);
  scalar "serve_faults.repair_tick" (float_of_int repair_at);
  scalar "serve_faults.post_opt_ratio" worst.Fault_sweep.ratio;
  scalar "serve_faults.rerouted" (float_of_int rerouted);
  scalar "serve_faults.unroutable.max" (float_of_int max_unroutable);
  scalar "serve_faults.recovery_makespan" (float_of_int recovery_makespan);
  scalar "serve_faults.event_budget" (float_of_int !serve_fault_budget);
  scalar "serve_faults.degraded_ticks" (float_of_int degraded_ticks);
  scalar "serve_faults.degraded_fraction" degraded_fraction;
  scalar "serve_faults.deferred_total" (float_of_int deferred_total);
  let show name reports =
    let during =
      match congestion_at reports (repair_at - 1) with
      | Some c -> c
      | None -> nan
    in
    let final =
      match List.rev reports with
      | (r : Serve.report) :: _ -> r.Serve.congestion
      | [] -> nan
    in
    scalar (Printf.sprintf "serve_faults.congestion.%s.outage" name) during;
    scalar (Printf.sprintf "serve_faults.congestion.%s.final" name) final;
    Printf.printf "%-8s congestion: %.4f during outage, %.4f final\n" name
      during final
  in
  show "warm" warm_reports;
  show "cold" cold_reports;
  Printf.printf
    "outage: %d commodities displaced, %d unroutable at worst, recovery \
     makespan %d ticks\n"
    rerouted max_unroutable recovery_makespan;
  Printf.printf
    "degraded replay (budget %d): %d/%d ticks served stale (%.0f%%), %d \
     deferrals\n"
    !serve_fault_budget degraded_ticks
    (List.length degraded_reports)
    (100.0 *. degraded_fraction)
    deferred_total;
  if recovery_makespan > 6 then begin
    Printf.printf
      "FAIL serve-faults: recovery makespan %d ticks above the 6-tick floor\n"
      recovery_makespan;
    exit 1
  end
  else
    Printf.printf "serve-faults: ok (recovered within %d ticks of the outage)\n"
      recovery_makespan

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("E1", "Theorem 2.3: log-sparsity polylog competitiveness", e1);
    ("E2", "Theorem 2.5: power of a few random choices", e2);
    ("E3", "Section 8 / Fig 1: lower bound gadget", e3);
    ("E4", "KKT91 barrier and bypass", e4);
    ("E5", "SMORE traffic engineering", e5);
    ("E6", "two cliques: cut-sized sampling", e6);
    ("E7", "completion time (Lemma 2.8)", e7);
    ("E8", "rounding (Lemma 6.3)", e8);
    ("E9", "sparsity vs competitiveness", e9);
    ("E10", "packet simulation: makespan vs cong+dil", e10);
    ("E11", "ablation: base routing quality", e11);
    ("E12", "solver cross-validation", e12);
    ("E13", "grids (HKL07 territory)", e13);
    ("E14", "robustness: single-link failures", e14);
    ("E15", "price of obliviousness", e15);
    ("E16", "over time: diurnal epochs", e16);
    ("E17", "Theorem 5.3 pipeline as router", e17);
    ("E18", "control loop: warm re-optimization", e18);
    ("E19", "latency under sustained load", e19);
    ("E20", "ladder sparsity accounting", e20);
  ]

let git_describe () =
  match Unix.open_process_in "git describe --always --dirty 2>/dev/null" with
  | ic ->
      let line = try input_line ic with End_of_file -> "" in
      ignore (Unix.close_process_in ic);
      if line = "" then "unknown" else line
  | exception _ -> "unknown"

let () =
  let args = Array.to_list Sys.argv in
  let has flag = List.mem flag args in
  if has "--big" then big_scale := true;
  let rec find_value flag = function
    | f :: v :: _ when f = flag -> Some v
    | _ :: rest -> find_value flag rest
    | [] -> None
  in
  let find_experiment args = find_value "--experiment" args in
  (match find_value "--jobs" args with
  | Some v -> (
      match int_of_string_opt v with
      | Some jobs when jobs >= 1 -> Pool.set_default_jobs jobs
      | _ ->
          Printf.eprintf "--jobs expects a positive integer, got %s\n" v;
          exit 1)
  | None -> ());
  (match find_value "--seed" args with
  | Some v -> (
      match int_of_string_opt v with
      | Some s -> master_seed := s
      | None ->
          Printf.eprintf "--seed expects an integer, got %s\n" v;
          exit 1)
  | None -> ());
  let trace_path = find_value "--trace" args in
  if trace_path <> None then Obs.set_tracing true;
  let cache_dir = find_value "--cache-dir" args in
  if (has "--cache" || cache_dir <> None) && not (has "--no-cache") then (
    match Store.open_ ?dir:cache_dir () with
    | st -> store := Some st
    | exception Store.Unreadable msg ->
        Printf.eprintf "--cache: %s\n" msg;
        exit 1);
  let timings : (string * float) list ref = ref [] in
  let timed_run id run =
    let t0 = Unix.gettimeofday () in
    Obs.traced ("bench." ^ id) run;
    timings := !timings @ [ (id, Unix.gettimeofday () -. t0) ]
  in
  if has "--list" then
    List.iter (fun (id, title, _) -> Printf.printf "%-4s %s\n" id title) experiments
  else if has "--kernels" then kernels ()
  else if has "--faults" then faults ()
  else if has "--obs-guard" then obs_guard ()
  else if has "--scale" then begin
    (match find_value "--scale-k" args with
    | Some v -> (
        match int_of_string_opt v with
        | Some k when k >= 2 && k mod 2 = 0 -> scale_k := k
        | _ ->
            Printf.eprintf "--scale-k expects an even integer >= 2, got %s\n" v;
            exit 1)
    | None -> ());
    (match find_value "--scale-pairs" args with
    | Some v -> (
        match int_of_string_opt v with
        | Some p when p >= 1 -> scale_pairs := p
        | _ ->
            Printf.eprintf "--scale-pairs expects a positive integer, got %s\n" v;
            exit 1)
    | None -> ());
    (match find_value "--scale-racke-trees" args with
    | Some v -> (
        match int_of_string_opt v with
        | Some t when t >= 1 -> scale_racke_trees := t
        | _ ->
            Printf.eprintf
              "--scale-racke-trees expects a positive integer, got %s\n" v;
            exit 1)
    | None -> ());
    scale ()
  end
  else if has "--serve" || has "--serve-faults" then begin
    let int_knob flag min_v target =
      match find_value flag args with
      | Some v -> (
          match int_of_string_opt v with
          | Some x when x >= min_v -> target := x
          | _ ->
              Printf.eprintf "%s expects an integer >= %d, got %s\n" flag min_v
                v;
              exit 1)
      | None -> ()
    in
    int_knob "--serve-nodes" 8 serve_nodes;
    int_knob "--serve-ticks" 2 serve_ticks;
    int_knob "--serve-pairs" 1 serve_churn_pairs;
    int_knob "--serve-fault-k" 1 serve_fault_k;
    int_knob "--serve-fault-budget" 1 serve_fault_budget;
    if has "--serve" then serve ();
    if has "--serve-faults" then serve_faults ()
  end
  else begin
    (match find_experiment args with
    | Some id -> (
        match List.find_opt (fun (eid, _, _) -> eid = id) experiments with
        | Some (eid, _, run) -> timed_run eid run
        | None ->
            Printf.eprintf "unknown experiment %s (try --list)\n" id;
            exit 1)
    | None ->
        if not (has "--timing") then
          List.iter (fun (id, _, run) -> timed_run id run) experiments);
    if (has "--timing" || not (has "--no-timing")) && find_experiment args = None
    then timing ()
  end;
  if has "--metrics" then begin
    header
      (Printf.sprintf "metrics  (jobs = %d)" (Pool.default_jobs ()));
    print_string (Metrics.table ())
  end;
  (match trace_path with
  | None -> ()
  | Some path ->
      (* argv is deliberately left out of the meta: traces from the same
         seed at different --jobs must differ only in the "jobs" field. *)
      let meta =
        [
          ("seed", Trace.Int !master_seed);
          ("jobs", Trace.Int (Pool.default_jobs ()));
          ("git", Trace.String (git_describe ()));
        ]
      in
      Obs.write_trace ~path ~meta);
  match find_value "--json" args with
  | None -> ()
  | Some path ->
      let escape s =
        let b = Buffer.create (String.length s + 8) in
        String.iter
          (fun c ->
            match c with
            | '"' -> Buffer.add_string b "\\\""
            | '\\' -> Buffer.add_string b "\\\\"
            | c when Char.code c < 0x20 ->
                Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
            | c -> Buffer.add_char b c)
          s;
        Buffer.contents b
      in
      let fields f entries =
        String.concat ", " (List.map f entries)
      in
      let cache_counter name =
        Metrics.counter_value (Metrics.counter ("artifact." ^ name))
      in
      let json =
        Printf.sprintf
          "{\"meta\": {\"schema\": \"sso-bench\", \"version\": 1, \"seed\": \
           %d, \"jobs\": %d, \"git\": \"%s\", \"trace_schema\": %d}, \
           \"seed\": %d, \"jobs\": %d, \"cache\": {%s}, \"experiments\": \
           [%s], \"scalars\": {%s}, \"metrics\": %s}\n"
          !master_seed (Pool.default_jobs ())
          (escape (git_describe ()))
          Trace.schema_version !master_seed (Pool.default_jobs ())
          (fields
             (fun name ->
               Printf.sprintf "\"%s\": %d" name (cache_counter name))
             [ "hit"; "miss"; "corrupt"; "bytes_read"; "bytes_written" ])
          (fields
             (fun (id, seconds) ->
               Printf.sprintf "{\"id\": \"%s\", \"seconds\": %.6f}" (escape id)
                 seconds)
             !timings)
          (fields
             (fun (name, v) ->
               (* Non-finite values (unsurvivable ratios, unmeasured
                  recoveries) are not valid JSON numbers: quote them. *)
               if Float.is_finite v then
                 Printf.sprintf "\"%s\": %.17g" (escape name) v
               else Printf.sprintf "\"%s\": \"%.17g\"" (escape name) v)
             !scalars)
          (Metrics.json ())
      in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc json)
