#!/bin/sh
# Routing-service smoke test: generate a logged churn stream of >= 10,000
# update events, replay it through `sso serve replay --json` at --jobs 1
# and --jobs 4 plus a repeat run, and assert all three reports — every
# per-tick line, the final congestion, and the routing digest — are
# byte-identical (the determinism contract of DESIGN.md §11).  Also
# checks the update-stream exit-code contract (10 for an unreadable
# path, 11 for a corrupt file, like `sso cache` and `sso trace`).
. "$(dirname "$0")/smoke_lib.sh"

stream="$dir/stream.jsonl"
"$SSO" serve generate --family torus --size 5 --ticks 220 --pairs 96 \
  --churn 0.25 --rate-churn 0.2 -o "$stream" > "$dir/gen.txt"
grep -q '^wrote ' "$dir/gen.txt"

events=$(sed -n '1s/.*"events":\([0-9]*\).*/\1/p' "$stream")
test "$events" -ge 10000 || {
  echo "serve_smoke: expected a >= 10k-update stream, got $events events" >&2
  exit 1
}

replay() {
  "$SSO" serve replay "$stream" --family torus --size 5 --base racke \
    --json --jobs "$1" 2> /dev/null
}
replay 1 > "$dir/j1.json"
replay 4 > "$dir/j4.json"
replay 4 > "$dir/j4b.json"
cmp "$dir/j1.json" "$dir/j4.json" || {
  echo "serve_smoke: replay differs between --jobs 1 and --jobs 4" >&2
  exit 1
}
cmp "$dir/j4.json" "$dir/j4b.json" || {
  echo "serve_smoke: repeat replay is not byte-identical" >&2
  exit 1
}
grep -q '"digest": "' "$dir/j1.json" || {
  echo "serve_smoke: no routing digest in the replay report" >&2
  exit 1
}
grep -q '"mode": "warm"' "$dir/j1.json" || {
  echo "serve_smoke: no warm re-solve in a 220-tick replay" >&2
  exit 1
}

# Exit codes: 10 for an unreadable stream, 11 for a corrupt one.
expect_exit 10 "missing stream" "$SSO" serve replay "$dir/missing.jsonl"
echo 'not an update stream' > "$dir/garbage.jsonl"
expect_exit 11 "garbage stream" "$SSO" serve replay "$dir/garbage.jsonl"
head -5 "$stream" > "$dir/trunc.jsonl"
expect_exit 11 "truncated stream" "$SSO" serve replay "$dir/trunc.jsonl"

echo "serve_smoke: ok"
