(* Robustness to link failures — SMORE's other selling point.

   A semi-oblivious system installs its candidate paths once.  When a link
   dies, the candidates crossing it die too, and the operator's only lever
   is re-optimizing sending rates over the survivors (Stage 4 again) —
   installing new paths takes orders of magnitude longer.  The paper notes
   (Section 1) that sampled candidate sets are diverse enough for this to
   work; this example kills every link of a B4-like WAN in turn and
   measures how well the surviving candidates absorb it.

   Run with: dune exec examples/failure_robustness.exe *)

module Rng = Sso_prng.Rng
module Gen = Sso_graph.Gen
module Graph = Sso_graph.Graph
module Demand = Sso_demand.Demand
module Racke = Sso_oblivious.Racke
module Sampler = Sso_core.Sampler
module Robustness = Sso_core.Robustness
module Scenario = Sso_fault.Scenario
module Sweep = Sso_fault.Sweep

let () =
  let rng = Rng.create 5 in
  let g, sites = Gen.b4 () in
  Printf.printf "network: B4-like WAN (%d sites, %d links)\n" (Graph.n g) (Graph.m g);
  Printf.printf "sites: %s...\n\n" (String.concat ", " (Array.to_list (Array.sub sites 0 5)));
  let demand = Demand.random_pairs (Rng.split rng) ~n:(Graph.n g) ~pairs:12 in
  let base = Racke.routing (Rng.split rng) g in
  Printf.printf "%d unit flows; failing each of the %d links in turn\n\n"
    (Demand.support_size demand) (Graph.m g);
  Printf.printf "%8s | %14s %12s %12s\n" "alpha" "stranded" "mean ratio" "worst ratio";
  List.iter
    (fun alpha ->
      let system = Sampler.alpha_sample (Rng.split rng) base ~alpha in
      let reports = Robustness.single_failures g system demand in
      let s = Robustness.summary reports in
      Printf.printf "%8d | %10d/%-3d %12.3f %12.3f\n" alpha
        s.Robustness.unsurvivable s.Robustness.edges_tested s.Robustness.mean_ratio
        s.Robustness.worst_ratio)
    [ 1; 2; 4; 8 ];
  Printf.printf
    "\n'stranded' counts failures that left some flow without a surviving\n";
  Printf.printf
    "candidate; with alpha ~ 4 the sampled paths are diverse enough that\n";
  Printf.printf
    "rate re-optimization alone rides out nearly every single failure.\n\n";
  (* Beyond single links: correlated and adversarial scenarios, plus how
     fast a warm-started re-optimization recovers (lib/fault). *)
  let system = Sampler.alpha_sample (Rng.split rng) base ~alpha:4 in
  let scenarios =
    List.init (Graph.n g) (Scenario.incident g)
    @ List.init 4 (fun i -> Scenario.random_k (Rng.split_at (Rng.split rng) i) g ~k:2)
  in
  let reports =
    Sweep.run ~recovery:Sweep.default_recovery g system demand scenarios
  in
  let s = Sweep.summary reports in
  Printf.printf
    "alpha=4 under %d node-failure SRLGs + 4 random 2-link cuts:\n"
    (Graph.n g);
  Printf.printf
    "  %d scenarios disconnect the WAN itself, %d strand a flow,\n"
    s.Sweep.disconnected s.Sweep.unsurvivable;
  Printf.printf
    "  survivable ones end %.3fx from the damaged optimum after ~%.0f\n"
    s.Sweep.mean_ratio s.Sweep.mean_recovery_rounds;
  Printf.printf "  warm-started MWU rounds (cold solves take hundreds).\n\n";
  let worst = Sweep.worst_k g system demand ~k:2 in
  Printf.printf "greedy worst-2 cut: %s -> ratio %.3f\n"
    worst.Sweep.scenario.Scenario.label worst.Sweep.ratio
