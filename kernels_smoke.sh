#!/bin/sh
# Kernel micro-benchmark smoke test: run `--kernels --json` and validate
# the emitted JSON against the schema BENCH_kernels.json commits to —
# every kernels.<name>.seconds scalar must be present with a positive
# finite value.  Timings themselves are machine noise and not checked;
# this guards the metric names and the JSON plumbing, so regressions in
# either fail CI instead of silently producing an unreadable baseline.
. "$(dirname "$0")/smoke_lib.sh"

"$BENCH" --kernels --json "$dir/kernels.json" > "$dir/kernels.txt"

for key in \
  kernels.sssp_all_sources.seconds \
  kernels.mwu_unrestricted_shared.seconds \
  kernels.mwu_hop_limited_shared.seconds \
  kernels.mwu_candidates.seconds \
  kernels.gk_candidates.seconds \
  kernels.frt_build_grid.seconds \
  kernels.racke_forest_grid.seconds
do
  grep -q "\"$key\": [0-9]" "$dir/kernels.json" || {
    echo "kernels_smoke: missing or non-numeric metric $key" >&2
    exit 1
  }
done

echo "kernels_smoke: ok"
